"""Command-line entry point: regenerate every table and figure.

Examples::

    python -m repro.experiments.cli figure1
    python -m repro.experiments.cli figure3 --scale small
    python -m repro.experiments.cli l2-sweep --benchmarks cjpeg djpeg
    python -m repro.experiments.cli all --out results/ --jobs 8

    # audited run: every simulated point's stall/instruction
    # decomposition is re-derived from the event stream and must match
    python -m repro.experiments.cli all --scale tiny --audit --no-cache

    # record a per-cycle JSONL trace, then render the stall report
    python -m repro.experiments.cli trace --scale tiny \\
        --benchmarks addition --variant vis --trace-out addition.jsonl
    python -m repro.experiments.cli trace --trace-in addition.jsonl

Simulation points fan out over ``--jobs`` worker processes and are
memoised in a persistent on-disk cache (``<out>/.simcache/`` unless
``--cache-dir`` overrides it), so re-runs only simulate points whose
configuration actually changed.  ``--jobs 1`` and ``--jobs N`` produce
byte-identical tables and CSVs.  ``--no-cache`` bypasses the disk
cache entirely (reads *and* writes).

Failure semantics (see EXPERIMENTS.md "Failure semantics"): every
point runs in isolation.  By default the first failure aborts the grid
with a ``GRID FAILURE`` line naming the point; ``--keep-going``
completes the grid instead, rendering explicit ``FAILED(<status>)``
markers into tables/CSVs and exiting 4.  ``--point-timeout`` bounds
each point's wall clock; ``--max-steps`` / ``--max-cycles`` bound the
simulation itself.  Every outcome is journaled to
``<out>/run_manifest.jsonl`` so ``--resume`` restarts a killed run
from where it died.  Transient worker losses are retried up to
``--max-retries`` times with backoff; deterministic failures never
are.

Every simulation point is statically verified before its first
simulated cycle (see DESIGN.md "Static verification"): the
:mod:`repro.analyze` gate rejects programs with provable bugs
(uninitialized reads, out-of-bounds accesses, missing GSR state,
malformed control flow).  ``--no-lint`` disables the gate; the
``lint`` subcommand runs the analyzer standalone over the workload
suite and prints the full diagnostic report::

    python -m repro.experiments.cli lint --scale tiny --strict
    python -m repro.experiments.cli lint --benchmarks cjpeg --variant vis

Static throughput analysis (see EXPERIMENTS.md "Static throughput
analysis") bounds a program's cycle count without simulating it: the
``analyze throughput`` verb prints per-block bottleneck tables (lower
bound, binding resource, utilization), ``lint --perf`` appends a
one-line bound summary per program, and the ``sweep`` experiment's
``--prune-static`` flag uses the lower bounds to skip config points
that provably cannot join the cost/cycles Pareto frontier::

    python -m repro.experiments.cli analyze throughput --scale tiny \\
        --benchmarks dotprod --config ooo-4way
    python -m repro.experiments.cli analyze throughput --json > bounds.json
    python -m repro.experiments.cli sweep --scale tiny --prune-static

Cycle-level checkpointing (see EXPERIMENTS.md "Checkpointing") is on
by default whenever a cache directory is available: every simulation
point snapshots its full mid-flight state to
``<cache>/checkpoints/<key>/`` every ``--checkpoint-interval``
simulated cycles, so a killed run's retry (or a ``--resume`` re-run)
restores mid-point instead of starting the point over — with
byte-identical final stats.  ``--no-checkpoint`` disables it;
``--checkpoint-dir`` relocates the snapshots.  With checkpointing on,
timed-out points join worker losses in the retry budget, because each
retry resumes from the newest snapshot and therefore makes forward
progress.  ``cache gc`` collects quarantine/snapshot/temp debris::

    python -m repro.experiments.cli cache gc --out results/

Exit codes: 0 success, 1 grid aborted on a failed point (fail-fast),
2 argument errors, 3 attribution-audit divergence (``--audit``),
4 grid completed with failed points (``--keep-going``),
5 static verification failed (``lint`` subcommand).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from ..analyze import ANALYZER_VERSION
from ..cpu.config import ProcessorConfig
from ..mem.config import MemoryConfig
from ..sim.engine import DEFAULT_ENGINE, ENGINES
from ..trace import AuditError, JsonlSink, Tracer
from ..workloads.base import Variant
from ..workloads.params import DEFAULT_SCALE, SMALL_SCALE, TINY_SCALE
from ..checkpoint import DEFAULT_CHECKPOINT_INTERVAL, DEFAULT_CHECKPOINT_KEEP
from ..workloads.suite import REGISTRY_VERSION, names
from . import figures
from .faults import (
    STATUS_TIMEOUT,
    TRANSIENT_STATUSES,
    GridFailure,
    RetryPolicy,
    RunManifest,
)
from .gc import (
    DEFAULT_GC_MAX_AGE_HOURS,
    DEFAULT_GC_MAX_QUARANTINE,
    gc_cache,
)
from .gc import DEFAULT_GC_KEEP as DEFAULT_GC_KEEP_SNAPSHOTS
from .parallel import (
    ANALYSIS_MEMO_DIRNAME,
    CACHE_FORMAT_VERSION,
    CHECKPOINT_DIRNAME,
    DEFAULT_CACHE_DIRNAME,
    DiskCache,
    ParallelRunner,
    print_progress,
)
from .report import format_table, write_csv

SCALES = {"default": DEFAULT_SCALE, "small": SMALL_SCALE, "tiny": TINY_SCALE}

#: --config choices for the ``trace`` and ``analyze`` subcommands.
TRACE_CONFIGS = {
    "inorder-1way": ProcessorConfig.inorder_1way,
    "inorder-2way": ProcessorConfig.inorder_2way,
    "inorder-4way": ProcessorConfig.inorder_4way,
    "ooo-2way": ProcessorConfig.ooo_2way,
    "ooo-4way": ProcessorConfig.ooo_4way,
    "ooo-8way": ProcessorConfig.ooo_8way,
}

#: exit code for an attribution-audit divergence
EXIT_AUDIT_DIVERGENCE = 3

#: exit code for a grid that completed with failed points (--keep-going)
EXIT_GRID_FAILURES = 4

#: exit code for static-verification failures (the ``lint`` subcommand)
EXIT_LINT_FAILURES = 5

#: the per-run outcome journal, relative to --out (see --resume)
MANIFEST_NAME = "run_manifest.jsonl"

EXPERIMENTS = {
    "figure1": ("E1: normalized execution time (Figure 1)",
                lambda runner, bm: figures.figure1(runner, bm)),
    "figure2": ("E2: dynamic instruction mix (Figure 2)",
                lambda runner, bm: figures.figure2(runner, bm)),
    "figure3": ("E3: software prefetching (Figure 3)",
                lambda runner, bm: figures.figure3(runner, bm)),
    "l2-sweep": ("E4: L2 cache-size sweep (Section 4.1)",
                 lambda runner, bm: figures.cache_sweep(runner, "l2", bm)),
    "l1-sweep": ("E5: L1 cache-size sweep (Section 4.1)",
                 lambda runner, bm: figures.cache_sweep(runner, "l1", bm)),
    "branch-stats": ("E7: branch misprediction rates (Section 3.2.2)",
                     lambda runner, bm: figures.branch_stats(runner, bm)),
    "mshr": ("E8: MSHR occupancy / load-miss overlap (Section 3.1)",
             lambda runner, bm: figures.mshr_study(runner, bm)),
}


def _print_params() -> None:
    cpu = ProcessorConfig.ooo_4way()
    mem = MemoryConfig()
    print("Table 2 (processor):")
    for field, value in vars(cpu).items():
        print(f"  {field:24s} {value}")
    print("Table 3 (memory):")
    for field, value in vars(mem).items():
        print(f"  {field:24s} {value}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["ablation", "analyze", "params",
                                       "all", "sweep", "trace", "lint",
                                       "cache", "serve"],
    )
    parser.add_argument(
        "verb", nargs="?", default=None,
        help="subcommand verb ('cache' takes 'gc': collect quarantined "
             "records, finished points' checkpoint snapshots, and "
             "orphaned temp files; 'analyze' takes 'throughput': static "
             "cycle bounds + per-block bottleneck attribution)",
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="default",
        help="workload/cache scale (DESIGN.md substitution 3)",
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help=f"subset of: {', '.join(names())}",
    )
    parser.add_argument("--out", default="results", help="CSV output directory")
    parser.add_argument(
        "--no-validate", action="store_true",
        help="skip functional output validation (faster re-runs)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for simulation points "
             "(default: os.cpu_count(); 1 = in-process serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent simulation-result cache "
             "(neither read nor write records; static-verification "
             "verdicts still persist -- they cannot affect results)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"persistent cache location "
             f"(default: <out>/{DEFAULT_CACHE_DIRNAME})",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-point progress lines on stderr",
    )
    parser.add_argument(
        "--no-lint", action="store_true",
        help="skip the pre-run static verification gate (repro.analyze); "
             "the escape hatch for deliberately-broken programs",
    )
    parser.add_argument(
        "--engine", choices=sorted(ENGINES), default=None,
        help="functional execution engine (default: $REPRO_ENGINE or "
             f"'{DEFAULT_ENGINE}'); both engines produce byte-identical "
             "results — 'scalar' is the slow reference implementation, "
             "'vector' block-compiles and memoizes traces",
    )
    lint_group = parser.add_argument_group(
        "lint subcommand",
        "statically verify workload programs without simulating them "
        f"(exit {EXIT_LINT_FAILURES} on gating diagnostics); DESIGN.md "
        "'Static verification' documents every diagnostic code",
    )
    lint_group.add_argument(
        "--strict", action="store_true",
        help="gate on warnings too, not just errors",
    )
    lint_group.add_argument(
        "--show-infos", action="store_true",
        help="print info-level diagnostics (unproven-address notes) "
             "in full instead of the first 10",
    )
    perf_group = parser.add_argument_group(
        "static throughput analysis",
        "mca-style cycle bounds without simulating "
        "(EXPERIMENTS.md, 'Static throughput analysis'): "
        "'analyze throughput' prints per-block bottleneck tables, "
        "'lint --perf' appends a bound summary per program, and the "
        "'sweep' experiment accepts --prune-static",
    )
    perf_group.add_argument(
        "--perf", action="store_true",
        help="(lint) also run the static throughput analyzer and print "
             "each program's cycle bounds + binding bottleneck",
    )
    perf_group.add_argument(
        "--json", action="store_true",
        help="(analyze throughput) emit machine-readable JSON reports "
             "on stdout instead of tables",
    )
    perf_group.add_argument(
        "--max-blocks", type=int, default=12, metavar="K",
        help="(analyze throughput) hottest basic blocks shown per "
             "program table (default: 12; JSON always carries all)",
    )
    perf_group.add_argument(
        "--prune-static", action="store_true",
        help="(sweep) skip simulating config points whose static lower "
             "bound is dominated by an already-simulated point; pruned "
             "points are journaled to the run manifest",
    )
    parser.add_argument(
        "--audit", action="store_true",
        help="re-derive every simulated point's stall/instruction "
             "decomposition from the per-cycle event stream and fail "
             f"(exit {EXIT_AUDIT_DIVERGENCE}) on any divergence",
    )
    fault_group = parser.add_argument_group(
        "fault tolerance",
        "per-point failure isolation, watchdogs, retries and resumable "
        "runs (EXPERIMENTS.md, 'Failure semantics')",
    )
    fault_group.add_argument(
        "--keep-going", action="store_true",
        help="complete the grid around failed points (rendered as "
             f"FAILED markers) and exit {EXIT_GRID_FAILURES} instead of "
             "aborting on the first failure",
    )
    fault_group.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock bound per simulation point; a point that "
             "exceeds it is reported as timed-out (worker-side SIGALRM "
             "backstopped by a parent-side hard deadline)",
    )
    fault_group.add_argument(
        "--resume", action="store_true",
        help=f"restore completed points from <out>/{MANIFEST_NAME} "
             "(the journal every run appends to) instead of re-simulating",
    )
    fault_group.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries (with backoff) for transient losses — worker "
             "death / pool breakage only, never deterministic failures "
             "(default: 2; 0 disables)",
    )
    fault_group.add_argument(
        "--max-tasks-per-child", type=int, default=None, metavar="N",
        help="recycle each worker process after N points (guards "
             "against slow leaks on long grids; needs Python >= 3.11)",
    )
    fault_group.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="instruction budget per simulation (default: a "
             "size-proportional budget; runaway programs raise instead "
             "of spinning)",
    )
    fault_group.add_argument(
        "--max-cycles", type=int, default=None, metavar="N",
        help="simulated-cycle budget per simulation (default: unbounded)",
    )
    ckpt_group = parser.add_argument_group(
        "checkpointing",
        "cycle-level snapshots of mid-flight simulations "
        "(EXPERIMENTS.md, 'Checkpointing'); retries and resumed runs "
        "restore mid-point with byte-identical final stats",
    )
    ckpt_group.add_argument(
        "--checkpoint-interval", type=int,
        default=DEFAULT_CHECKPOINT_INTERVAL, metavar="CYCLES",
        help="simulated cycles between snapshots "
             f"(default: {DEFAULT_CHECKPOINT_INTERVAL}; snapshots only "
             "happen at trace-chunk boundaries, never mid-cycle)",
    )
    ckpt_group.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="snapshot location, one subdirectory per point "
             f"(default: <cache-dir>/{CHECKPOINT_DIRNAME})",
    )
    ckpt_group.add_argument(
        "--checkpoint-keep", type=int, default=DEFAULT_CHECKPOINT_KEEP,
        metavar="N",
        help="newest snapshots retained per point while it runs "
             f"(default: {DEFAULT_CHECKPOINT_KEEP})",
    )
    ckpt_group.add_argument(
        "--no-checkpoint", action="store_true",
        help="disable checkpointing entirely (kills mid-point restart "
             "the point from scratch)",
    )
    gc_group = parser.add_argument_group(
        "cache gc verb",
        "collect on-disk debris: quarantined cache records, checkpoint "
        "snapshots of finished points, orphaned temp files",
    )
    gc_group.add_argument(
        "--gc-max-age-hours", type=float, default=DEFAULT_GC_MAX_AGE_HOURS,
        metavar="H",
        help="age past which quarantined records and snapshots are "
             f"collected (default: {DEFAULT_GC_MAX_AGE_HOURS:g})",
    )
    gc_group.add_argument(
        "--gc-keep", type=int, default=DEFAULT_GC_KEEP_SNAPSHOTS, metavar="N",
        help="newest snapshots retained per point by gc "
             f"(default: {DEFAULT_GC_KEEP_SNAPSHOTS})",
    )
    gc_group.add_argument(
        "--gc-max-quarantine", type=int, default=DEFAULT_GC_MAX_QUARANTINE,
        metavar="N",
        help="newest quarantined files retained "
             f"(default: {DEFAULT_GC_MAX_QUARANTINE})",
    )
    gc_group.add_argument(
        "--release-poisoned", action="store_true",
        help="drop 'poisoned' quarantine records from the serve journal "
             "so the next server admits those points again (run against "
             "a stopped server)",
    )
    serve_group = parser.add_argument_group(
        "serve subcommand",
        "run the simulation service: an asyncio batch API that dedupes "
        "requests against the simcache, coalesces identical in-flight "
        "work, and schedules misses on a preemptible worker fleet "
        "(EXPERIMENTS.md, 'Serving')",
    )
    serve_group.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1 — a local trusted service)",
    )
    serve_group.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="bind port (default: 0 = ephemeral; the bound port is "
             "printed on the ready line)",
    )
    serve_group.add_argument(
        "--unix-socket", default=None, metavar="PATH",
        help="serve a unix socket at PATH instead of TCP",
    )
    serve_group.add_argument(
        "--queue-limit", type=int, default=None, metavar="N",
        help="bound on not-yet-completed miss points; requests whose "
             "new misses do not fit are rejected with a 'busy' reply "
             "(default: 256)",
    )
    serve_group.add_argument(
        "--grace", type=float, default=None, metavar="SECONDS",
        help="graceful-shutdown drain window before in-flight points "
             "are preempted to their newest snapshots (default: 5)",
    )
    serve_group.add_argument(
        "--poison-threshold", type=int, default=None, metavar="N",
        help="consecutive attributed worker deaths before a point is "
             "quarantined as 'poisoned' (0 disables; default: 3)",
    )
    serve_group.add_argument(
        "--stall-grace", type=float, default=300.0, metavar="SECONDS",
        help="with pending misses and no retire progress for this long, "
             "proactively rebuild a wedged worker pool "
             "(0 disables; default: 300)",
    )
    trace_group = parser.add_argument_group(
        "trace subcommand",
        "record a per-cycle JSONL trace of one benchmark and/or render "
        "the timeline + top-stall-sites report from an existing trace",
    )
    trace_group.add_argument(
        "--variant", choices=[v.value for v in Variant], default=None,
        help="program variant to trace (default: vis) or lint "
             "(default: every supported variant)",
    )
    trace_group.add_argument(
        "--config", choices=sorted(TRACE_CONFIGS), default="ooo-4way",
        help="processor configuration to trace (default: ooo-4way)",
    )
    trace_group.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="JSONL trace output path "
             "(default: <out>/trace_<benchmark>_<variant>.jsonl)",
    )
    trace_group.add_argument(
        "--trace-in", default=None, metavar="PATH",
        help="render the report from this existing JSONL trace "
             "instead of simulating",
    )
    trace_group.add_argument(
        "--top", type=int, default=10, metavar="K",
        help="stall sites to show in the trace report (default: 10)",
    )
    trace_group.add_argument(
        "--timeline", type=int, default=24, metavar="N",
        help="instructions in the trace-report timeline (default: 24)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "cache":
        if args.verb != "gc":
            parser.error("the 'cache' subcommand takes exactly one verb: gc")
        return _run_gc(args)
    if args.experiment == "analyze":
        if args.verb != "throughput":
            parser.error(
                "the 'analyze' subcommand takes exactly one verb: throughput"
            )
        return _run_analyze(args, SCALES[args.scale], parser)
    if args.verb is not None:
        parser.error(
            f"unexpected positional {args.verb!r} "
            f"(only 'cache' and 'analyze' take a verb)"
        )

    if args.experiment == "params":
        _print_params()
        return 0

    if args.experiment == "serve":
        return _run_serve(args)

    scale = SCALES[args.scale]
    if args.experiment == "lint":
        return _run_lint(args, scale, parser)
    if args.experiment == "trace":
        try:
            return _run_trace(args, scale, parser)
        except AuditError as exc:
            print(f"AUDIT FAILURE: {exc}", file=sys.stderr)
            return EXIT_AUDIT_DIVERGENCE

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    cache = None
    cache_dir = Path(args.cache_dir or (Path(args.out) / DEFAULT_CACHE_DIRNAME))
    if not args.no_cache:
        cache = DiskCache(cache_dir)
    # Gate verdicts persist even under --no-cache: a static-verification
    # verdict cannot affect measured numbers, so re-timing runs skip the
    # (expensive) analysis while still re-simulating every point.
    # --no-lint disables the gate (and therefore the memo) entirely.
    lint_memo_dir = None if args.no_lint else cache_dir / ANALYSIS_MEMO_DIRNAME
    # Checkpoint snapshots live beside the cache (but work with
    # --no-cache too: snapshots hold mid-flight state, not results, so
    # bypassing the *result* cache must not disable crash recovery).
    checkpoint_dir = None
    if not args.no_checkpoint:
        checkpoint_dir = Path(
            args.checkpoint_dir or (cache_dir / CHECKPOINT_DIRNAME)
        )
    # With checkpointing armed, a timed-out point's retry resumes from
    # its newest snapshot and makes forward progress, so timeouts join
    # the transient (retryable) statuses.
    retry_statuses = TRANSIENT_STATUSES
    if checkpoint_dir is not None:
        retry_statuses = TRANSIENT_STATUSES | {STATUS_TIMEOUT}
    manifest = None
    try:
        manifest = RunManifest(
            Path(args.out) / MANIFEST_NAME,
            resume=args.resume,
            cache_version=(
                f"{CACHE_FORMAT_VERSION}.{REGISTRY_VERSION}"
                f".{ANALYZER_VERSION}"
            ),
        )
    except OSError as exc:
        print(
            f"warning: cannot journal to {Path(args.out) / MANIFEST_NAME} "
            f"({exc}); --resume will not be available for this run",
            file=sys.stderr,
        )
    runner = ParallelRunner(
        scale=scale,
        jobs=jobs,
        cache=cache,
        validate=not args.no_validate,
        audit=args.audit,
        progress=None if args.quiet else print_progress(),
        keep_going=args.keep_going,
        point_timeout=args.point_timeout,
        retry=RetryPolicy(
            max_retries=max(0, args.max_retries),
            retry_statuses=retry_statuses,
        ),
        manifest=manifest,
        max_tasks_per_child=args.max_tasks_per_child,
        max_steps=args.max_steps,
        max_cycles=args.max_cycles,
        lint=not args.no_lint,
        lint_memo_dir=lint_memo_dir,
        engine=args.engine,
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=max(1, args.checkpoint_interval),
        checkpoint_keep=max(1, args.checkpoint_keep),
    )
    benchmarks = tuple(args.benchmarks) if args.benchmarks else None
    todo = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.experiment in ("ablation", "sweep"):
        todo = [args.experiment]

    try:
        for key in todo:
            start = time.time()
            if key == "ablation":
                title = "E10: footnote-3 source-tuning ablation"
                headers, rows, _ = figures.ablation(None, scale)
            elif key == "sweep":
                title = "E11: design-space sweep (width x window)"
                headers, rows, raw = figures.design_sweep(
                    runner, benchmarks, prune=args.prune_static
                )
                print(
                    f"sweep: {raw['simulated']} point(s) simulated, "
                    f"{raw['pruned']} pruned by static lower bounds",
                    file=sys.stderr,
                )
            else:
                title, fn = EXPERIMENTS[key]
                headers, rows, _ = fn(runner, benchmarks)
            print()
            print(format_table(headers, rows, title=f"{title} [scale={args.scale}]"))
            csv_path = write_csv(
                Path(args.out) / f"{key.replace('-', '_')}_{args.scale}.csv",
                headers, rows,
            )
            print(f"[{time.time() - start:6.1f}s] wrote {csv_path}")
    except AuditError as exc:
        print(f"AUDIT FAILURE: {exc}", file=sys.stderr)
        return EXIT_AUDIT_DIVERGENCE
    except GridFailure as exc:
        print(f"GRID FAILURE: {exc}", file=sys.stderr)
        if exc.failure.traceback_text:
            print(exc.failure.traceback_text, file=sys.stderr, end="")
        print(
            "(re-run with --keep-going to complete the grid around "
            "failed points, or --resume to restart from the journal)",
            file=sys.stderr,
        )
        return 1
    finally:
        if manifest is not None:
            manifest.close()

    if runner.resumed:
        print(
            f"resume: {runner.resumed} point(s) restored from "
            f"{Path(args.out) / MANIFEST_NAME}",
            file=sys.stderr,
        )
    if runner.checkpoint_resumes:
        print(
            f"checkpoint: {runner.checkpoint_resumes} simulation(s) "
            f"resumed mid-point from snapshots under {checkpoint_dir}",
            file=sys.stderr,
        )
    if runner.simulated or runner.cache_hits:
        print(
            f"\npoints: {runner.simulated} simulated, "
            f"{runner.cache_hits} from cache"
            + ("" if cache is not None else " (persistent cache disabled)"),
            file=sys.stderr,
        )
    if args.audit:
        print(
            f"audit: {runner.simulated} simulated point(s) audited, "
            f"zero divergences"
            + (
                f" ({runner.cache_hits} cached point(s) skipped; "
                f"use --no-cache to re-audit)"
                if runner.cache_hits else ""
            ),
            file=sys.stderr,
        )
    if runner.failures:
        print(
            f"\n{len(runner.failures)} point(s) FAILED "
            f"(details in {Path(args.out) / MANIFEST_NAME}):",
            file=sys.stderr,
        )
        for failure in runner.failures:
            print(f"  {failure.summary()}", file=sys.stderr)
        return EXIT_GRID_FAILURES
    return 0


def _run_gc(args) -> int:
    """The ``cache gc`` verb: collect on-disk debris (never fails the
    build — unremovable files are logged and counted)."""
    cache_dir = Path(args.cache_dir or (Path(args.out) / DEFAULT_CACHE_DIRNAME))
    checkpoint_dir = Path(
        args.checkpoint_dir or (cache_dir / CHECKPOINT_DIRNAME)
    )
    report = gc_cache(
        cache_dir,
        checkpoint_root=checkpoint_dir,
        max_age_s=max(0.0, args.gc_max_age_hours) * 3600.0,
        keep_per_point=max(0, args.gc_keep),
        max_quarantine=max(0, args.gc_max_quarantine),
        release_poisoned=args.release_poisoned,
    )
    print(report.summary())
    return 0


def _run_serve(args) -> int:
    """The ``serve`` subcommand: run the simulation service until
    SIGTERM/SIGINT (or a client ``shutdown`` request).

    Prints one machine-readable ready line to stdout once the socket
    is bound and the worker fleet is warm::

        SERVE ready pid=12345 addr=127.0.0.1:43117 cache=results/simcache

    so scripts (and the CI smoke job) can wait for it and parse the
    ephemeral port.  Shutdown is graceful: in-flight points get
    ``--grace`` seconds to finish, then are preempted — their newest
    cycle-level snapshots survive, and a restarted server resumes them
    mid-point when re-requested.
    """
    import asyncio
    import signal

    from ..serve.server import (
        DEFAULT_GRACE_S,
        DEFAULT_POISON_THRESHOLD,
        DEFAULT_QUEUE_LIMIT,
        DEFAULT_SERVE_CHECKPOINT_INTERVAL,
        DEFAULT_WORKERS,
        BatchServer,
        ServeConfig,
    )

    cache_dir = Path(
        args.cache_dir or (Path(args.out) / DEFAULT_CACHE_DIRNAME)
    )
    # the batch default snapshots every 10M cycles; a service optimizes
    # for cheap preemption, so an untouched --checkpoint-interval means
    # the (much tighter) serve default
    interval = args.checkpoint_interval
    if interval == DEFAULT_CHECKPOINT_INTERVAL:
        interval = DEFAULT_SERVE_CHECKPOINT_INTERVAL
    config = ServeConfig(
        host=args.host,
        port=args.port,
        unix_path=args.unix_socket,
        cache_dir=None if args.no_cache else cache_dir,
        workers=args.jobs if args.jobs is not None else DEFAULT_WORKERS,
        queue_limit=(
            args.queue_limit if args.queue_limit is not None
            else DEFAULT_QUEUE_LIMIT
        ),
        grace_s=args.grace if args.grace is not None else DEFAULT_GRACE_S,
        poison_threshold=(
            max(0, args.poison_threshold)
            if args.poison_threshold is not None
            else DEFAULT_POISON_THRESHOLD
        ),
        stall_grace_s=max(0.0, args.stall_grace),
        point_timeout=args.point_timeout,
        max_retries=max(0, args.max_retries),
        checkpoint=not args.no_checkpoint,
        checkpoint_interval=interval,
        checkpoint_keep=args.checkpoint_keep,
        validate=not args.no_validate,
        lint=not args.no_lint,
        engine=args.engine,
    )

    async def _serve() -> None:
        server = BatchServer(config)
        host, port = await server.start()
        addr = host if port == -1 else f"{host}:{port}"
        print(
            f"SERVE ready pid={os.getpid()} addr={addr} "
            f"cache={cache_dir if not args.no_cache else 'disabled'}",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, server.request_shutdown)
        await server.wait_stopped()

    asyncio.run(_serve())
    return 0


def _run_analyze(args, scale, parser) -> int:
    """The ``analyze throughput`` verb: static cycle bounds, no simulation.

    Builds every selected (benchmark, variant) pair at the chosen scale
    and prints one mca-style per-block bottleneck table per program
    (EXPERIMENTS.md, "Static throughput analysis"), or a JSON array of
    reports with ``--json``.  Always exits 0: unbounded loops are
    reported as diagnostics in the table/JSON, not failures.
    """
    import json

    from ..analyze import analyze_throughput
    from ..workloads.suite import get
    from ..workloads.suite import names as workload_names

    benchmarks = list(args.benchmarks) if args.benchmarks else list(
        workload_names()
    )
    unknown = [b for b in benchmarks if b not in set(workload_names())]
    if unknown:
        parser.error(f"unknown benchmark(s): {', '.join(unknown)}")

    cpu = TRACE_CONFIGS[args.config]()
    mem = scale.memory_config()
    reports = []
    start = time.time()
    for name in benchmarks:
        workload = get(name)
        variants = workload.supported_variants
        if args.variant is not None:
            wanted = Variant(args.variant)
            if wanted not in variants:
                print(f"{name}: variant {wanted.value!r} not supported; "
                      f"skipped", file=sys.stderr)
                continue
            variants = (wanted,)
        for variant in variants:
            built = workload.build(variant, scale)
            rep = analyze_throughput(built.program, cpu, mem)
            if args.json:
                entry = rep.to_dict()
                entry["benchmark"] = name
                entry["variant"] = variant.value
                reports.append(entry)
            else:
                print(f"=== {name}[{variant.value}] @ {args.config} "
                      f"[scale={args.scale}] ===")
                print(rep.format(max_blocks=args.max_blocks))
                print()
    if args.json:
        json.dump(reports, sys.stdout, indent=2)
        print()
    else:
        print(
            f"analyze: {len(benchmarks)} benchmark(s) bounded in "
            f"{time.time() - start:.1f}s (static only; nothing simulated)",
            file=sys.stderr,
        )
    return 0


def _run_lint(args, scale, parser) -> int:
    """The ``lint`` subcommand: statically verify workload programs.

    Builds every selected (benchmark, variant) pair at the chosen
    scale, runs the full :mod:`repro.analyze` pass stack over each, and
    prints one report per program.  Exit 0 when no program has gating
    diagnostics (errors; plus warnings under ``--strict``), else
    :data:`EXIT_LINT_FAILURES`.
    """
    from ..analyze import analyze_program
    from ..workloads.suite import get
    from ..workloads.suite import names as workload_names

    benchmarks = list(args.benchmarks) if args.benchmarks else list(
        workload_names()
    )
    unknown = [b for b in benchmarks if b not in set(workload_names())]
    if unknown:
        parser.error(f"unknown benchmark(s): {', '.join(unknown)}")

    perf_cpu = TRACE_CONFIGS[args.config]() if args.perf else None
    failed = 0
    checked = 0
    start = time.time()
    for name in benchmarks:
        workload = get(name)
        variants = workload.supported_variants
        if args.variant is not None:
            wanted = Variant(args.variant)
            if wanted not in variants:
                print(f"{name}: variant {wanted.value!r} not supported; "
                      f"skipped", file=sys.stderr)
                continue
            variants = (wanted,)
        for variant in variants:
            built = workload.build(variant, scale)
            report = analyze_program(built.program)
            checked += 1
            gating = report.gating(strict=args.strict)
            status = "FAIL" if gating else "ok"
            line = f"[{status:4s}] {name}[{variant.value}]: {report.summary()}"
            print(line)
            if gating or args.show_infos:
                max_infos = None if args.show_infos else 10
                print(report.format(max_infos=max_infos))
            if gating:
                failed += 1
            if perf_cpu is not None:
                from ..analyze import analyze_throughput

                rep = analyze_throughput(
                    built.program, perf_cpu, scale.memory_config()
                )
                print(f"       perf: {rep.summary()}")
    mode = "strict (errors + warnings gate)" if args.strict else "errors gate"
    print(
        f"\nlint: {checked} program(s) verified in "
        f"{time.time() - start:.1f}s, {failed} failed [{mode}]",
        file=sys.stderr,
    )
    return EXIT_LINT_FAILURES if failed else 0


def _run_trace(args, scale, parser) -> int:
    """The ``trace`` subcommand: record and/or report."""
    from ..trace.report import render_report

    trace_path = args.trace_in
    if trace_path is None:
        # Record mode: simulate one benchmark with a JSONL sink attached.
        from ..sim.static_info import StaticProgramInfo
        from ..workloads.suite import get
        from .runner import audited_simulate

        if not args.benchmarks:
            parser.error(
                "trace needs either --trace-in <file> to analyze or "
                "--benchmarks <name> to record"
            )
        benchmark = args.benchmarks[0]
        variant_name = args.variant or "vis"
        variant = Variant(variant_name)
        cpu = TRACE_CONFIGS[args.config]()
        mem = scale.memory_config()
        built = get(benchmark).build(variant, scale)
        info = StaticProgramInfo(built.program)
        trace_path = args.trace_out or (
            Path(args.out)
            / f"trace_{benchmark}_{variant_name.replace('+', '_')}.jsonl"
        )
        sink = JsonlSink(trace_path, header={
            "benchmark": benchmark,
            "variant": variant_name,
            "config": cpu.name,
            "scale": scale.to_dict(),
            "width": cpu.issue_width,
            "ops": list(info.op_name),
        })
        tracer = Tracer(info, cpu.issue_width, sinks=[sink])
        stats, report, _machine = audited_simulate(
            built.program, cpu, mem,
            benchmark=f"{benchmark}[{variant_name}]",
            tracer=tracer,
        )
        print(report.summary(), file=sys.stderr)
        print(
            f"wrote {sink.events_written} events to {trace_path}",
            file=sys.stderr,
        )

    print(render_report(trace_path, top=args.top, timeline=args.timeline))
    return 0


if __name__ == "__main__":
    sys.exit(main())
