"""Command-line entry point: regenerate every table and figure.

Examples::

    python -m repro.experiments.cli figure1
    python -m repro.experiments.cli figure3 --scale small
    python -m repro.experiments.cli l2-sweep --benchmarks cjpeg djpeg
    python -m repro.experiments.cli all --out results/ --jobs 8

Simulation points fan out over ``--jobs`` worker processes and are
memoised in a persistent on-disk cache (``<out>/.simcache/`` unless
``--cache-dir`` overrides it), so re-runs only simulate points whose
configuration actually changed.  ``--jobs 1`` and ``--jobs N`` produce
byte-identical tables and CSVs.  ``--no-cache`` bypasses the disk
cache entirely (reads *and* writes).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from ..cpu.config import ProcessorConfig
from ..mem.config import MemoryConfig
from ..workloads.params import DEFAULT_SCALE, SMALL_SCALE, TINY_SCALE
from ..workloads.suite import names
from . import figures
from .parallel import DEFAULT_CACHE_DIRNAME, DiskCache, ParallelRunner, print_progress
from .report import format_table, write_csv

SCALES = {"default": DEFAULT_SCALE, "small": SMALL_SCALE, "tiny": TINY_SCALE}

EXPERIMENTS = {
    "figure1": ("E1: normalized execution time (Figure 1)",
                lambda runner, bm: figures.figure1(runner, bm)),
    "figure2": ("E2: dynamic instruction mix (Figure 2)",
                lambda runner, bm: figures.figure2(runner, bm)),
    "figure3": ("E3: software prefetching (Figure 3)",
                lambda runner, bm: figures.figure3(runner, bm)),
    "l2-sweep": ("E4: L2 cache-size sweep (Section 4.1)",
                 lambda runner, bm: figures.cache_sweep(runner, "l2", bm)),
    "l1-sweep": ("E5: L1 cache-size sweep (Section 4.1)",
                 lambda runner, bm: figures.cache_sweep(runner, "l1", bm)),
    "branch-stats": ("E7: branch misprediction rates (Section 3.2.2)",
                     lambda runner, bm: figures.branch_stats(runner, bm)),
    "mshr": ("E8: MSHR occupancy / load-miss overlap (Section 3.1)",
             lambda runner, bm: figures.mshr_study(runner, bm)),
}


def _print_params() -> None:
    cpu = ProcessorConfig.ooo_4way()
    mem = MemoryConfig()
    print("Table 2 (processor):")
    for field, value in vars(cpu).items():
        print(f"  {field:24s} {value}")
    print("Table 3 (memory):")
    for field, value in vars(mem).items():
        print(f"  {field:24s} {value}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["ablation", "params", "all"],
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="default",
        help="workload/cache scale (DESIGN.md substitution 3)",
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help=f"subset of: {', '.join(names())}",
    )
    parser.add_argument("--out", default="results", help="CSV output directory")
    parser.add_argument(
        "--no-validate", action="store_true",
        help="skip functional output validation (faster re-runs)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for simulation points "
             "(default: os.cpu_count(); 1 = in-process serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent simulation-result cache "
             "(neither read nor write records)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"persistent cache location "
             f"(default: <out>/{DEFAULT_CACHE_DIRNAME})",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-point progress lines on stderr",
    )
    args = parser.parse_args(argv)

    if args.experiment == "params":
        _print_params()
        return 0

    scale = SCALES[args.scale]
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or (Path(args.out) / DEFAULT_CACHE_DIRNAME)
        cache = DiskCache(cache_dir)
    runner = ParallelRunner(
        scale=scale,
        jobs=jobs,
        cache=cache,
        validate=not args.no_validate,
        progress=None if args.quiet else print_progress(),
    )
    benchmarks = tuple(args.benchmarks) if args.benchmarks else None
    todo = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.experiment == "ablation":
        todo = ["ablation"]

    for key in todo:
        start = time.time()
        if key == "ablation":
            title = "E10: footnote-3 source-tuning ablation"
            headers, rows, _ = figures.ablation(None, scale)
        else:
            title, fn = EXPERIMENTS[key]
            headers, rows, _ = fn(runner, benchmarks)
        print()
        print(format_table(headers, rows, title=f"{title} [scale={args.scale}]"))
        csv_path = write_csv(
            Path(args.out) / f"{key.replace('-', '_')}_{args.scale}.csv",
            headers, rows,
        )
        print(f"[{time.time() - start:6.1f}s] wrote {csv_path}")

    if runner.simulated or runner.cache_hits:
        print(
            f"\npoints: {runner.simulated} simulated, "
            f"{runner.cache_hits} from cache"
            + ("" if cache is not None else " (persistent cache disabled)"),
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
