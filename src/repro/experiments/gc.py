"""Garbage collection for on-disk debris under the results directory.

Long-lived result directories accumulate three kinds of junk that the
fault-tolerance machinery deliberately leaves behind for post-mortem
instead of deleting at the moment of failure:

* **quarantined cache records** — torn/corrupt ``.simcache`` records
  moved into ``<cache>/quarantine/`` by :class:`~repro.experiments
  .parallel.DiskCache`;
* **checkpoint snapshots** — per-point ``ckpt_*.ckpt.json`` files under
  ``<cache>/checkpoints/<key>/`` (see :mod:`repro.checkpoint`).  The
  runner prunes to the newest ``keep`` per point *while a point is
  running*, but snapshots of points that finished successfully — and
  quarantined snapshots — persist until collected;
* **orphaned temp files** — ``*.tmp`` left by a SIGKILL between
  ``mkstemp`` and ``os.replace``;
* **serve-layer debris** — the crash-only serving journal
  (``serve_journal.jsonl``, see :mod:`repro.serve.journal`) keeps
  ``poisoned`` quarantine records forever by design (they block
  re-admission), journals from an incompatible cache generation are
  dead weight, and ``serve_running/`` worker markers of dead pids are
  orphans of a killed server.

:func:`gc_cache` sweeps all of these with age and count caps.  It is
deliberately boring: every unlink is individually guarded, failures are
logged and counted (never raised), and nothing outside the given roots
is ever touched.  The CLI exposes it as ``cache gc``::

    python -m repro.experiments.cli cache gc --out results/
    python -m repro.experiments.cli cache gc --gc-max-age-hours 1 --gc-keep 0
    python -m repro.experiments.cli cache gc --release-poisoned

``--release-poisoned`` is the only way back for a quarantined point: it
rewrites the journal without the ``poisoned`` records, so the next
server admits those points again.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from ..checkpoint.snapshot import (
    QUARANTINE_DIRNAME as CKPT_QUARANTINE_DIRNAME,
    SNAPSHOT_SUFFIX,
    prune_snapshots,
)
from ..serve.journal import (
    JOURNAL_FORMAT_VERSION,
    STATUS_POISONED,
    TERMINAL_STATUSES,
    journal_path,
    load_journal_records,
    rewrite_journal,
)
from ..serve.server import SERVE_RUNNING_DIRNAME, _pid_alive
from .parallel import CHECKPOINT_DIRNAME, QUARANTINE_DIRNAME

log = logging.getLogger("repro.experiments.gc")

#: default age (hours) past which quarantined records and finished
#: points' snapshots are collected
DEFAULT_GC_MAX_AGE_HOURS = 7 * 24.0

#: default newest-snapshots-per-point retained by ``cache gc``
DEFAULT_GC_KEEP = 1

#: default cap on quarantined files retained (newest first)
DEFAULT_GC_MAX_QUARANTINE = 50


@dataclass
class GcReport:
    """What one :func:`gc_cache` sweep removed (and failed to remove)."""

    quarantine_removed: int = 0
    snapshots_removed: int = 0
    tmp_removed: int = 0
    dirs_removed: int = 0
    #: dead-pid worker markers swept from ``serve_running/``
    markers_removed: int = 0
    #: whole journal files dropped (incompatible format/cache generation)
    journals_removed: int = 0
    #: aged terminal journal records pruned
    journal_records_removed: int = 0
    #: quarantined (``poisoned``) points released back to admission
    poisoned_released: int = 0
    errors: int = 0

    @property
    def total_removed(self) -> int:
        return (
            self.quarantine_removed + self.snapshots_removed
            + self.tmp_removed + self.dirs_removed
            + self.markers_removed + self.journals_removed
            + self.journal_records_removed + self.poisoned_released
        )

    def summary(self) -> str:
        return (
            f"gc: removed {self.quarantine_removed} quarantined record(s), "
            f"{self.snapshots_removed} checkpoint snapshot(s), "
            f"{self.tmp_removed} temp file(s), "
            f"{self.dirs_removed} empty dir(s), "
            f"{self.markers_removed} worker marker(s), "
            f"{self.journal_records_removed} journal record(s)"
            + (f", {self.journals_removed} dead journal(s)"
               if self.journals_removed else "")
            + (f"; released {self.poisoned_released} poisoned point(s)"
               if self.poisoned_released else "")
            + (f"; {self.errors} error(s) (see log)" if self.errors else "")
        )


def _unlink(path: Path, report: GcReport) -> bool:
    try:
        path.unlink()
        return True
    except OSError as exc:
        report.errors += 1
        log.warning("gc: could not remove %s: %s", path, exc)
        return False


def _mtime(path: Path) -> float:
    try:
        return path.stat().st_mtime
    except OSError:
        return 0.0  # treat unstat-able files as ancient


def _sweep_quarantine(
    qdir: Path, cutoff: float, max_keep: int, report: GcReport
) -> None:
    """Age-cap plus count-cap one quarantine directory (newest kept)."""
    try:
        entries = [p for p in qdir.iterdir() if p.is_file()]
    except OSError:
        return
    entries.sort(key=_mtime, reverse=True)  # newest first
    for rank, path in enumerate(entries):
        if rank >= max_keep or _mtime(path) < cutoff:
            if _unlink(path, report):
                report.quarantine_removed += 1
    _rmdir_if_empty(qdir, report)


def _sweep_tmp(directory: Path, report: GcReport) -> None:
    """Orphaned ``*.tmp`` from writes killed between mkstemp/replace.
    Any .tmp file is garbage by construction: a live write holds its
    temp file only for the duration of one ``write()+os.replace()``."""
    try:
        tmps = list(directory.glob("*.tmp"))
    except OSError:
        return
    for path in tmps:
        if _unlink(path, report):
            report.tmp_removed += 1


def _rmdir_if_empty(directory: Path, report: GcReport) -> None:
    try:
        directory.rmdir()  # fails (caught) unless empty
        report.dirs_removed += 1
    except OSError:
        pass


def _sweep_point_dir(
    point_dir: Path, cutoff: float, keep: int, max_quarantine: int,
    report: GcReport,
) -> None:
    """One point's snapshot directory: temp debris, count cap, age cap,
    its own quarantine/, then the directory itself if now empty."""
    _sweep_tmp(point_dir, report)
    report.snapshots_removed += prune_snapshots(point_dir, keep)
    try:
        snapshots = sorted(point_dir.glob(f"*{SNAPSHOT_SUFFIX}"))
    except OSError:
        snapshots = []
    for path in snapshots:
        if _mtime(path) < cutoff and _unlink(path, report):
            report.snapshots_removed += 1
    qdir = point_dir / CKPT_QUARANTINE_DIRNAME
    if qdir.is_dir():
        _sweep_quarantine(qdir, cutoff, max_quarantine, report)
    _rmdir_if_empty(point_dir, report)


def _current_cache_version() -> str:
    """The cache stamp this build writes (mirrors ``DiskCache.version``);
    a journal from any other generation can never be replayed."""
    from .parallel import (
        ANALYZER_VERSION,
        CACHE_FORMAT_VERSION,
        REGISTRY_VERSION,
    )

    return f"{CACHE_FORMAT_VERSION}.{REGISTRY_VERSION}.{ANALYZER_VERSION}"


def _sweep_markers(marker_dir: Path, report: GcReport) -> None:
    """Dead-pid worker markers under ``serve_running/`` (orphans of a
    SIGKILLed server).  Markers of live pids are left alone — a running
    server's workers are mid-point."""
    try:
        markers = sorted(marker_dir.glob("*.json"))
    except OSError:
        return
    for path in markers:
        try:
            pid = json.loads(path.read_text(encoding="utf-8")).get("pid")
        except (OSError, ValueError):
            pid = None  # torn marker: garbage
        if isinstance(pid, int) and _pid_alive(pid):
            continue
        if _unlink(path, report):
            report.markers_removed += 1
    _rmdir_if_empty(marker_dir, report)


def _sweep_journal(
    cache_root: Path, cutoff: float, release_poisoned: bool,
    report: GcReport,
) -> None:
    """The serve journal: drop it wholesale when its header is from an
    incompatible format or cache generation (orphaned segment — nothing
    in it can be replayed); otherwise prune aged terminal records and,
    with ``release_poisoned``, rewrite without quarantine records so
    the next server admits those points again.  Run against a stopped
    server — a live server holds the journal open for append."""
    path = journal_path(cache_root)
    if not path.exists():
        return
    header, records = load_journal_records(path)
    if (
        header is None
        or header.get("version") != JOURNAL_FORMAT_VERSION
        or header.get("cache_version") != _current_cache_version()
    ):
        if _unlink(path, report):
            report.journals_removed += 1
        return
    keep: List[dict] = []
    dropped = False
    for _key, record in sorted(records.items()):
        status = record.get("status")
        if status == STATUS_POISONED:
            if release_poisoned:
                report.poisoned_released += 1
                dropped = True
                continue
        elif status in TERMINAL_STATUSES and record.get("at", 0.0) < cutoff:
            # terminal history stranded by a kill before the server's
            # shutdown compaction could drop it
            report.journal_records_removed += 1
            dropped = True
            continue
        keep.append(record)
    if dropped and not rewrite_journal(path, keep):
        report.errors += 1


def gc_cache(
    cache_root,
    checkpoint_root=None,
    max_age_s: float = DEFAULT_GC_MAX_AGE_HOURS * 3600.0,
    keep_per_point: int = DEFAULT_GC_KEEP,
    max_quarantine: int = DEFAULT_GC_MAX_QUARANTINE,
    release_poisoned: bool = False,
    now: Optional[float] = None,
) -> GcReport:
    """Collect quarantine/snapshot/temp debris; returns a :class:`GcReport`.

    * ``<cache_root>/quarantine/``: keep the newest ``max_quarantine``
      files, and of those only the ones younger than ``max_age_s``;
    * ``<checkpoint_root>/<key>/``: per point, keep the newest
      ``keep_per_point`` snapshots younger than ``max_age_s``, drop
      ``*.tmp`` debris, apply the same caps to the point's own
      ``quarantine/``, and remove the directory once empty;
    * ``<cache_root>/*.tmp``: always removed;
    * ``<cache_root>/serve_running/``: dead-pid worker markers removed;
    * ``<cache_root>/serve_journal.jsonl``: removed wholesale when from
      an incompatible cache generation; aged terminal records pruned;
      ``release_poisoned`` drops quarantine records (re-admitting the
      points).

    ``checkpoint_root`` defaults to ``<cache_root>/checkpoints``.  The
    sweep never raises — unremovable files are logged and counted in
    :attr:`GcReport.errors`.
    """
    report = GcReport()
    cache_root = Path(cache_root)
    checkpoint_root = (
        Path(checkpoint_root) if checkpoint_root is not None
        else cache_root / CHECKPOINT_DIRNAME
    )
    cutoff = (now if now is not None else time.time()) - max_age_s

    if cache_root.is_dir():
        _sweep_tmp(cache_root, report)
        qdir = cache_root / QUARANTINE_DIRNAME
        if qdir.is_dir():
            _sweep_quarantine(qdir, cutoff, max_quarantine, report)
        marker_dir = cache_root / SERVE_RUNNING_DIRNAME
        if marker_dir.is_dir():
            _sweep_markers(marker_dir, report)
        _sweep_journal(cache_root, cutoff, release_poisoned, report)

    if checkpoint_root.is_dir():
        try:
            point_dirs: List[Path] = sorted(
                p for p in checkpoint_root.iterdir() if p.is_dir()
            )
        except OSError:
            point_dirs = []
        for point_dir in point_dirs:
            _sweep_point_dir(
                point_dir, cutoff, keep_per_point, max_quarantine, report
            )
        _rmdir_if_empty(checkpoint_root, report)

    return report
