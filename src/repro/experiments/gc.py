"""Garbage collection for on-disk debris under the results directory.

Long-lived result directories accumulate three kinds of junk that the
fault-tolerance machinery deliberately leaves behind for post-mortem
instead of deleting at the moment of failure:

* **quarantined cache records** — torn/corrupt ``.simcache`` records
  moved into ``<cache>/quarantine/`` by :class:`~repro.experiments
  .parallel.DiskCache`;
* **checkpoint snapshots** — per-point ``ckpt_*.ckpt.json`` files under
  ``<cache>/checkpoints/<key>/`` (see :mod:`repro.checkpoint`).  The
  runner prunes to the newest ``keep`` per point *while a point is
  running*, but snapshots of points that finished successfully — and
  quarantined snapshots — persist until collected;
* **orphaned temp files** — ``*.tmp`` left by a SIGKILL between
  ``mkstemp`` and ``os.replace``.

:func:`gc_cache` sweeps all three with age and count caps.  It is
deliberately boring: every unlink is individually guarded, failures are
logged and counted (never raised), and nothing outside the given roots
is ever touched.  The CLI exposes it as ``cache gc``::

    python -m repro.experiments.cli cache gc --out results/
    python -m repro.experiments.cli cache gc --gc-max-age-hours 1 --gc-keep 0
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from ..checkpoint.snapshot import (
    QUARANTINE_DIRNAME as CKPT_QUARANTINE_DIRNAME,
    SNAPSHOT_SUFFIX,
    prune_snapshots,
)
from .parallel import CHECKPOINT_DIRNAME, QUARANTINE_DIRNAME

log = logging.getLogger("repro.experiments.gc")

#: default age (hours) past which quarantined records and finished
#: points' snapshots are collected
DEFAULT_GC_MAX_AGE_HOURS = 7 * 24.0

#: default newest-snapshots-per-point retained by ``cache gc``
DEFAULT_GC_KEEP = 1

#: default cap on quarantined files retained (newest first)
DEFAULT_GC_MAX_QUARANTINE = 50


@dataclass
class GcReport:
    """What one :func:`gc_cache` sweep removed (and failed to remove)."""

    quarantine_removed: int = 0
    snapshots_removed: int = 0
    tmp_removed: int = 0
    dirs_removed: int = 0
    errors: int = 0

    @property
    def total_removed(self) -> int:
        return (
            self.quarantine_removed + self.snapshots_removed
            + self.tmp_removed + self.dirs_removed
        )

    def summary(self) -> str:
        return (
            f"gc: removed {self.quarantine_removed} quarantined record(s), "
            f"{self.snapshots_removed} checkpoint snapshot(s), "
            f"{self.tmp_removed} temp file(s), "
            f"{self.dirs_removed} empty dir(s)"
            + (f"; {self.errors} error(s) (see log)" if self.errors else "")
        )


def _unlink(path: Path, report: GcReport) -> bool:
    try:
        path.unlink()
        return True
    except OSError as exc:
        report.errors += 1
        log.warning("gc: could not remove %s: %s", path, exc)
        return False


def _mtime(path: Path) -> float:
    try:
        return path.stat().st_mtime
    except OSError:
        return 0.0  # treat unstat-able files as ancient


def _sweep_quarantine(
    qdir: Path, cutoff: float, max_keep: int, report: GcReport
) -> None:
    """Age-cap plus count-cap one quarantine directory (newest kept)."""
    try:
        entries = [p for p in qdir.iterdir() if p.is_file()]
    except OSError:
        return
    entries.sort(key=_mtime, reverse=True)  # newest first
    for rank, path in enumerate(entries):
        if rank >= max_keep or _mtime(path) < cutoff:
            if _unlink(path, report):
                report.quarantine_removed += 1
    _rmdir_if_empty(qdir, report)


def _sweep_tmp(directory: Path, report: GcReport) -> None:
    """Orphaned ``*.tmp`` from writes killed between mkstemp/replace.
    Any .tmp file is garbage by construction: a live write holds its
    temp file only for the duration of one ``write()+os.replace()``."""
    try:
        tmps = list(directory.glob("*.tmp"))
    except OSError:
        return
    for path in tmps:
        if _unlink(path, report):
            report.tmp_removed += 1


def _rmdir_if_empty(directory: Path, report: GcReport) -> None:
    try:
        directory.rmdir()  # fails (caught) unless empty
        report.dirs_removed += 1
    except OSError:
        pass


def _sweep_point_dir(
    point_dir: Path, cutoff: float, keep: int, max_quarantine: int,
    report: GcReport,
) -> None:
    """One point's snapshot directory: temp debris, count cap, age cap,
    its own quarantine/, then the directory itself if now empty."""
    _sweep_tmp(point_dir, report)
    report.snapshots_removed += prune_snapshots(point_dir, keep)
    try:
        snapshots = sorted(point_dir.glob(f"*{SNAPSHOT_SUFFIX}"))
    except OSError:
        snapshots = []
    for path in snapshots:
        if _mtime(path) < cutoff and _unlink(path, report):
            report.snapshots_removed += 1
    qdir = point_dir / CKPT_QUARANTINE_DIRNAME
    if qdir.is_dir():
        _sweep_quarantine(qdir, cutoff, max_quarantine, report)
    _rmdir_if_empty(point_dir, report)


def gc_cache(
    cache_root,
    checkpoint_root=None,
    max_age_s: float = DEFAULT_GC_MAX_AGE_HOURS * 3600.0,
    keep_per_point: int = DEFAULT_GC_KEEP,
    max_quarantine: int = DEFAULT_GC_MAX_QUARANTINE,
    now: Optional[float] = None,
) -> GcReport:
    """Collect quarantine/snapshot/temp debris; returns a :class:`GcReport`.

    * ``<cache_root>/quarantine/``: keep the newest ``max_quarantine``
      files, and of those only the ones younger than ``max_age_s``;
    * ``<checkpoint_root>/<key>/``: per point, keep the newest
      ``keep_per_point`` snapshots younger than ``max_age_s``, drop
      ``*.tmp`` debris, apply the same caps to the point's own
      ``quarantine/``, and remove the directory once empty;
    * ``<cache_root>/*.tmp``: always removed.

    ``checkpoint_root`` defaults to ``<cache_root>/checkpoints``.  The
    sweep never raises — unremovable files are logged and counted in
    :attr:`GcReport.errors`.
    """
    report = GcReport()
    cache_root = Path(cache_root)
    checkpoint_root = (
        Path(checkpoint_root) if checkpoint_root is not None
        else cache_root / CHECKPOINT_DIRNAME
    )
    cutoff = (now if now is not None else time.time()) - max_age_s

    if cache_root.is_dir():
        _sweep_tmp(cache_root, report)
        qdir = cache_root / QUARANTINE_DIRNAME
        if qdir.is_dir():
            _sweep_quarantine(qdir, cutoff, max_quarantine, report)

    if checkpoint_root.is_dir():
        try:
            point_dirs: List[Path] = sorted(
                p for p in checkpoint_root.iterdir() if p.is_dir()
            )
        except OSError:
            point_dirs = []
        for point_dir in point_dirs:
            _sweep_point_dir(
                point_dir, cutoff, keep_per_point, max_quarantine, report
            )
        _rmdir_if_empty(checkpoint_root, report)

    return report
