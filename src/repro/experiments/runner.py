"""Glue: build a benchmark, run it functionally, feed the trace to a
timing model, validate the output, return :class:`ExecutionStats`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..cpu.config import ProcessorConfig
from ..cpu.pipeline import make_model
from ..cpu.stats import ExecutionStats
from ..mem.config import MemoryConfig
from ..mem.system import MemorySystem
from ..sim.machine import Machine
from ..sim.static_info import StaticProgramInfo
from ..workloads.base import BuiltWorkload, Variant
from ..workloads.params import DEFAULT_SCALE, WorkloadScale
from ..workloads.suite import get


def simulate_program(
    program,
    cpu_config: ProcessorConfig,
    mem_config: MemoryConfig,
    benchmark: str = "",
    machine: Optional[Machine] = None,
) -> Tuple[ExecutionStats, Machine]:
    """Run one program through the functional machine + timing model."""
    machine = machine or Machine(program)
    machine.reset()
    info = StaticProgramInfo(program)
    memory = MemorySystem(mem_config)
    model = make_model(info, cpu_config, memory)
    stats = model.simulate(machine.run(), benchmark or program.name)
    stats.check_consistency()
    return stats, machine


@dataclass
class RunCache:
    """Builds (program construction is expensive for the codecs) and
    functional validations are cached per (benchmark, variant, scale)."""

    scale: WorkloadScale = DEFAULT_SCALE
    validate: bool = True
    _built: Dict[Tuple[str, Variant], BuiltWorkload] = field(default_factory=dict)
    _validated: Dict[Tuple[str, Variant], bool] = field(default_factory=dict)

    def built(self, name: str, variant: Variant) -> BuiltWorkload:
        key = (name, variant)
        if key not in self._built:
            self._built[key] = get(name).build(variant, self.scale)
        return self._built[key]

    def run(
        self,
        name: str,
        variant: Variant,
        cpu_config: ProcessorConfig,
        mem_config: MemoryConfig,
    ) -> ExecutionStats:
        built = self.built(name, variant)
        stats, machine = simulate_program(
            built.program, cpu_config, mem_config,
            benchmark=f"{name}[{variant.value}]",
        )
        key = (name, variant)
        if self.validate and not self._validated.get(key):
            built.validate(machine)
            self._validated[key] = True
        return stats

    def run_points(self, points) -> list:
        """Serial point-running protocol (see
        :class:`repro.experiments.parallel.ParallelRunner` for the
        parallel, disk-cached implementation): resolve a sequence of
        :class:`~repro.experiments.parallel.SimPoint` in enumeration
        order."""
        return [
            self.run(p.benchmark, p.variant, p.cpu, p.mem) for p in points
        ]
