"""Glue: build a benchmark, run it functionally, feed the trace to a
timing model, validate the output, return :class:`ExecutionStats`.

With ``audit=True`` (or an explicit :class:`~repro.trace.Tracer`)
every run also streams per-cycle events through the tracing layer and
:func:`repro.trace.audit.audit_run` proves the stall/instruction
decompositions conserve exactly — any divergence raises
:class:`~repro.trace.AuditError`."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..analyze import verify_program
from ..cpu.config import ProcessorConfig
from ..cpu.pipeline import make_model
from ..cpu.stats import ExecutionStats
from ..mem.config import MemoryConfig
from ..mem.system import MemorySystem
from ..sim.engine import make_machine
from ..sim.machine import Machine
from ..sim.static_info import StaticProgramInfo
from ..trace import AuditReport, Tracer, audit_run
from ..workloads.base import BuiltWorkload, Variant
from ..workloads.params import DEFAULT_SCALE, WorkloadScale
from ..workloads.suite import get


def simulate_program(
    program,
    cpu_config: ProcessorConfig,
    mem_config: MemoryConfig,
    benchmark: str = "",
    machine: Optional[Machine] = None,
    tracer: Optional[Tracer] = None,
    audit: bool = False,
    max_steps: Optional[int] = None,
    max_cycles: Optional[int] = None,
    lint: bool = True,
    lint_memo_dir: Optional[Path] = None,
    checkpoint=None,
    engine: Optional[str] = None,
) -> Tuple[ExecutionStats, Machine]:
    """Run one program through the functional machine + timing model.

    ``tracer`` attaches an existing :class:`~repro.trace.Tracer` (with
    whatever sinks it carries); ``audit=True`` builds one on the fly if
    needed and raises :class:`~repro.trace.AuditError` on any
    attribution divergence.  With neither, the timing hot paths run
    exactly as before — tracing is strictly pay-for-use.

    ``max_steps`` / ``max_cycles`` are the runaway watchdogs: a bound
    on functionally executed instructions (``None`` = the machine's
    size-proportional default budget) and on simulated cycles (``None``
    = unbounded); both raise
    :class:`~repro.sim.machine.SimulationError` instead of hanging.

    ``lint`` (default on) statically verifies the program before the
    first simulated cycle: the :mod:`repro.analyze` gate raises
    :class:`~repro.analyze.VerificationError` on uninitialized reads,
    provably out-of-bounds accesses, GSR-state misuse, or malformed
    control flow.  The analysis report is memoized on the program
    object, so re-running the same built program (the common case
    across an experiment grid) verifies once.  ``lint=False`` is the
    escape hatch (CLI ``--no-lint``) for deliberately-broken programs.
    ``lint_memo_dir`` points the gate at the persistent digest-keyed
    verdict memo (see :func:`repro.analyze.verify_program`) so repeat
    runs pay only a content hash.

    ``checkpoint`` (a :class:`repro.checkpoint.CheckpointSession`)
    arms cycle-level checkpointing: the run restores from the newest
    valid snapshot in the session directory (if any) and writes a new
    snapshot every ``checkpoint.interval`` simulated cycles.  Final
    stats are byte-identical to an unarmed run.

    ``engine`` selects the execution engine for a machine built here
    (``scalar`` / ``vector``; ``None`` = ``REPRO_ENGINE`` or the
    default).  It is ignored when ``machine`` is passed in.  Either
    engine produces byte-identical stats.
    """
    stats, machine, _report = _simulate(
        program, cpu_config, mem_config, benchmark, machine, tracer, audit,
        max_steps, max_cycles, lint, lint_memo_dir, checkpoint, engine,
    )
    return stats, machine


def audited_simulate(
    program,
    cpu_config: ProcessorConfig,
    mem_config: MemoryConfig,
    benchmark: str = "",
    machine: Optional[Machine] = None,
    tracer: Optional[Tracer] = None,
) -> Tuple[ExecutionStats, AuditReport, Machine]:
    """Like :func:`simulate_program` with ``audit=True``, but also
    returns the :class:`~repro.trace.AuditReport` (already verified)."""
    stats, machine, report = _simulate(
        program, cpu_config, mem_config, benchmark, machine, tracer, True,
        max_steps=None, max_cycles=None, lint=True,
    )
    assert report is not None
    return stats, report, machine


def static_info(program) -> StaticProgramInfo:
    """Per-program :class:`StaticProgramInfo`, cached on the program
    object — it is pure static metadata, and one grid re-times each
    built program under several processor configs."""
    info = getattr(program, "_static_info_cache", None)
    if info is None:
        info = StaticProgramInfo(program)
        try:
            program._static_info_cache = info
        except AttributeError:
            pass
    return info


def _simulate(
    program,
    cpu_config: ProcessorConfig,
    mem_config: MemoryConfig,
    benchmark: str,
    machine: Optional[Machine],
    tracer: Optional[Tracer],
    audit: bool,
    max_steps: Optional[int] = None,
    max_cycles: Optional[int] = None,
    lint: bool = True,
    lint_memo_dir: Optional[Path] = None,
    checkpoint=None,
    engine: Optional[str] = None,
) -> Tuple[ExecutionStats, Machine, Optional[AuditReport]]:
    if lint:
        # Pre-run gate: provably-wrong programs never reach the
        # simulator.  Memoized on the program object, so repeated runs
        # of one built program (an experiment grid) verify once; with a
        # memo dir the verdict additionally persists across processes.
        verify_program(program, memo_dir=lint_memo_dir)
    machine = machine or make_machine(program, engine)
    machine.reset()
    info = static_info(program)
    if tracer is None and audit:
        tracer = Tracer(info, cpu_config.issue_width)
    memory = MemorySystem(mem_config, tracer=tracer)
    model = make_model(
        info, cpu_config, memory, tracer=tracer, max_cycles=max_cycles
    )
    if checkpoint is not None:
        from ..checkpoint import run_with_checkpoints

        stats = run_with_checkpoints(
            checkpoint, machine, model, memory, tracer,
            benchmark or program.name, max_steps=max_steps,
        )
    else:
        stats = model.simulate(
            machine.run(max_instructions=max_steps, observer=tracer),
            benchmark or program.name,
        )
    stats.check_consistency()
    report = None
    if tracer is not None:
        tracer.close()
        if audit:
            report = audit_run(stats, tracer).raise_if_failed()
    return stats, machine, report


@dataclass
class RunCache:
    """Builds (program construction is expensive for the codecs) and
    functional validations are cached per (benchmark, variant, scale)."""

    scale: WorkloadScale = DEFAULT_SCALE
    validate: bool = True
    #: when True every run is audited against the event-stream
    #: recomputation (raises :class:`~repro.trace.AuditError` on any
    #: attribution divergence)
    audit: bool = False
    #: runaway watchdogs forwarded to :func:`simulate_program`
    #: (``None`` = the machine's size-proportional default / unbounded)
    max_steps: Optional[int] = None
    max_cycles: Optional[int] = None
    #: pre-run static verification gate (CLI ``--no-lint`` disables)
    lint: bool = True
    #: persistent digest-keyed gate-verdict memo (``None`` = off);
    #: the parallel runner points this at ``<simcache>/analysis/``
    lint_memo_dir: Optional[Path] = None
    #: execution engine for the functional machine (``None`` = resolve
    #: from ``REPRO_ENGINE`` / the default)
    engine: Optional[str] = None
    _built: Dict[Tuple[str, Variant], BuiltWorkload] = field(default_factory=dict)
    _validated: Dict[Tuple[str, Variant], bool] = field(default_factory=dict)
    #: one machine per built program, reused across processor configs —
    #: the vector engine memoizes the functional trace on the machine,
    #: so every re-timing after the first replays it for free
    _machines: Dict[Tuple[str, Variant], Machine] = field(default_factory=dict)

    def built(self, name: str, variant: Variant) -> BuiltWorkload:
        key = (name, variant)
        if key not in self._built:
            self._built[key] = get(name).build(variant, self.scale)
        return self._built[key]

    def run(
        self,
        name: str,
        variant: Variant,
        cpu_config: ProcessorConfig,
        mem_config: MemoryConfig,
        checkpoint=None,
    ) -> ExecutionStats:
        built = self.built(name, variant)
        key = (name, variant)
        stats, machine = simulate_program(
            built.program, cpu_config, mem_config,
            benchmark=f"{name}[{variant.value}]",
            machine=self._machines.get(key),
            audit=self.audit,
            max_steps=self.max_steps,
            max_cycles=self.max_cycles,
            lint=self.lint,
            lint_memo_dir=self.lint_memo_dir,
            checkpoint=checkpoint,
            engine=self.engine,
        )
        self._machines[key] = machine
        if self.validate and not self._validated.get(key):
            built.validate(machine)
            self._validated[key] = True
        return stats

    def run_points(self, points) -> list:
        """Serial point-running protocol (see
        :class:`repro.experiments.parallel.ParallelRunner` for the
        parallel, disk-cached implementation): resolve a sequence of
        :class:`~repro.experiments.parallel.SimPoint` in enumeration
        order."""
        return [
            self.run(p.benchmark, p.variant, p.cpu, p.mem) for p in points
        ]
