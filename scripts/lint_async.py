#!/usr/bin/env python3
"""AST lint: no blocking calls inside ``async def`` bodies.

The serve layer (``src/repro/serve/``) runs its entire control plane on
one asyncio event loop; a single synchronous ``time.sleep``, file read
or subprocess call in an ``async def`` stalls every connected client at
once.  Blocking work belongs in the worker pool
(``loop.run_in_executor``) or in synchronous helpers invoked *before*
the loop starts serving.

This linter walks every function with Python's own ``ast`` module (no
third-party deps) and reports a finding when the **innermost** enclosing
function frame is ``async`` and the call matches a blocking pattern:

======================  =================================================
code                    pattern
======================  =================================================
``A-ASYNC-SLEEP``       ``time.sleep(...)``
``A-ASYNC-SUBPROC``     ``subprocess.run/call/check_call/check_output/
                        Popen/getoutput/getstatusoutput(...)``
``A-ASYNC-IO``          bare ``open(...)`` / ``io.open(...)``; blocking
                        ``os`` syscalls (``fsync``, ``replace``,
                        ``rename``, ``remove``, ``unlink``,
                        ``makedirs``, ``rmdir``); ``pathlib``-style
                        method calls (``.read_text``, ``.write_text``,
                        ``.read_bytes``, ``.write_bytes``, ``.unlink``,
                        ``.mkdir``, ``.rmdir``, ``.touch``)
======================  =================================================

Sync ``def`` nested inside an ``async def`` is *not* flagged: a closure
handed to ``run_in_executor`` is exactly where blocking calls should
live.  ``asyncio.open_connection``-style names are not file I/O and are
never flagged.

Waivers — mirroring the assembly builder's ``b.waive(code, reason=...)``
idiom — are trailing comments on the offending line::

    data = path.read_text()  # async-waive(A-ASYNC-IO): startup path, loop not serving yet

A waiver names the exact code it demotes (comma-separate for several)
and should carry a reason after the colon.  Waived findings are printed
as notes and do not fail the lint; a waiver whose code matches nothing
on its line is itself an error (``A-STALE-WAIVER``), so waivers cannot
silently outlive the code they excuse.

Usage::

    python scripts/lint_async.py [paths...]   # default: src/repro/serve

Exit status 0 when clean (waived-only counts as clean), 1 otherwise.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

DEFAULT_ROOT = Path("src/repro/serve")

CODE_SLEEP = "A-ASYNC-SLEEP"
CODE_SUBPROC = "A-ASYNC-SUBPROC"
CODE_IO = "A-ASYNC-IO"
CODE_STALE = "A-STALE-WAIVER"

#: subprocess entry points that block until the child finishes (Popen
#: itself blocks on fork/exec and is a smell on the loop regardless)
_SUBPROCESS_CALLS = {
    "run", "call", "check_call", "check_output", "Popen",
    "getoutput", "getstatusoutput",
}

#: blocking os-module syscalls the serve layer actually uses
_OS_CALLS = {
    "fsync", "replace", "rename", "remove", "unlink", "makedirs", "rmdir",
}

#: pathlib-style blocking methods, flagged on *any* receiver (untyped
#: AST cannot resolve the receiver; these names are unambiguous enough)
_PATH_METHODS = {
    "read_text", "write_text", "read_bytes", "write_bytes",
    "unlink", "mkdir", "rmdir", "touch",
}

#: ``# async-waive(CODE[, CODE...]): reason`` trailing comment
_WAIVER_RE = re.compile(
    r"#\s*async-waive\(\s*([A-Z0-9ASYNC, \-]+?)\s*\)\s*(?::\s*(.*))?$"
)


class Finding(NamedTuple):
    path: str
    line: int
    code: str
    call: str
    waived: bool
    reason: str


def _call_target(node: ast.Call) -> Tuple[str, Optional[str], str]:
    """Return ``(dotted_name, receiver_head, attr)`` for a call.

    ``dotted_name`` is the best-effort source text of the callee;
    ``receiver_head`` is the leftmost name (``time`` in
    ``time.sleep``), or ``None`` for a bare-name call; ``attr`` is the
    final attribute (``sleep``), or the bare name itself.
    """
    func = node.func
    if isinstance(func, ast.Name):
        return func.id, None, func.id
    if isinstance(func, ast.Attribute):
        head: Optional[ast.expr] = func.value
        while isinstance(head, ast.Attribute):
            head = head.value
        head_name = head.id if isinstance(head, ast.Name) else None
        try:
            dotted = ast.unparse(func)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            dotted = f"?.{func.attr}"
        return dotted, head_name, func.attr
    return "<dynamic>", None, ""


def classify_call(node: ast.Call) -> Optional[Tuple[str, str]]:
    """``(code, dotted_name)`` when the call matches a blocking
    pattern, else ``None``."""
    dotted, head, attr = _call_target(node)
    if head == "time" and attr == "sleep":
        return CODE_SLEEP, dotted
    if head == "subprocess" and attr in _SUBPROCESS_CALLS:
        return CODE_SUBPROC, dotted
    if head is None and attr == "open":
        return CODE_IO, dotted
    if head == "io" and attr == "open":
        return CODE_IO, dotted
    if head == "os" and attr in _OS_CALLS:
        return CODE_IO, dotted
    # pathlib-style method on any receiver *except* asyncio/aio wrappers
    if head not in ("asyncio",) and attr in _PATH_METHODS:
        return CODE_IO, dotted
    return None


class _AsyncFrameVisitor(ast.NodeVisitor):
    """Collect blocking calls whose innermost function frame is async."""

    def __init__(self) -> None:
        self.frames: List[str] = []
        self.hits: List[Tuple[int, str, str]] = []  # (lineno, code, call)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.frames.append("sync")
        self.generic_visit(node)
        self.frames.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.frames.append("async")
        self.generic_visit(node)
        self.frames.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self.frames and self.frames[-1] == "async":
            match = classify_call(node)
            if match is not None:
                self.hits.append((node.lineno, match[0], match[1]))
        self.generic_visit(node)


def _waivers_by_line(source: str) -> Dict[int, Tuple[Set[str], str]]:
    waivers: Dict[int, Tuple[Set[str], str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _WAIVER_RE.search(line)
        if m:
            codes = {c.strip() for c in m.group(1).split(",") if c.strip()}
            waivers[lineno] = (codes, (m.group(2) or "").strip())
    return waivers


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text; returns all findings, including
    waived ones and stale waivers."""
    tree = ast.parse(source, filename=path)
    visitor = _AsyncFrameVisitor()
    visitor.visit(tree)
    waivers = _waivers_by_line(source)
    used_waiver_lines: Set[int] = set()
    findings: List[Finding] = []
    for lineno, code, call in visitor.hits:
        waiver = waivers.get(lineno)
        if waiver is not None and code in waiver[0]:
            used_waiver_lines.add(lineno)
            findings.append(
                Finding(path, lineno, code, call, True, waiver[1])
            )
        else:
            findings.append(Finding(path, lineno, code, call, False, ""))
    for lineno, (codes, reason) in sorted(waivers.items()):
        if lineno not in used_waiver_lines:
            findings.append(Finding(
                path, lineno, CODE_STALE,
                f"async-waive({', '.join(sorted(codes))})", False, reason,
            ))
    return findings


def lint_paths(paths: List[Path]) -> List[Finding]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: List[Finding] = []
    for file in files:
        findings.extend(
            lint_source(file.read_text(encoding="utf-8"), str(file))
        )
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="flag blocking calls inside async def bodies",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, default=[DEFAULT_ROOT],
        help=f"files or directories to lint (default: {DEFAULT_ROOT})",
    )
    args = parser.parse_args(argv)
    findings = lint_paths(list(args.paths))
    errors = 0
    for f in findings:
        if f.waived:
            note = f" — {f.reason}" if f.reason else ""
            print(f"{f.path}:{f.line}: note: {f.code} {f.call} waived{note}")
        else:
            print(
                f"{f.path}:{f.line}: error: {f.code} blocking call "
                f"{f.call!r} in async def body"
            )
            errors += 1
    checked = {f.path for f in findings}
    if errors:
        print(f"lint_async: {errors} error(s)")
        return 1
    waived = sum(1 for f in findings if f.waived)
    print(
        f"lint_async: clean ({waived} waived)" if waived or checked
        else "lint_async: clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
