#!/usr/bin/env python
"""The paper's memory-behaviour story on one kernel.

Section 4's argument, reproduced end to end on ``blend``:

1. with ILP + VIS the kernel is memory-bound (most time in L1-miss
   stalls),
2. growing the caches does NOT help — the accesses are streaming with
   no reuse,
3. software prefetching DOES help (1.4x-2.5x in the paper), converting
   the kernel back to compute-bound.

Run:  python examples/memory_wall.py
"""

from repro import DEFAULT_SCALE, ProcessorConfig, Variant, get_workload, simulate_program

CONFIG = ProcessorConfig.ooo_4way()


def describe(label, stats):
    memory_share = stats.memory_component / stats.cycles
    bound = "MEMORY-bound" if stats.memory_bound else "compute-bound"
    print(f"  {label:28s} {stats.cycles:9d} cycles, "
          f"{memory_share:5.1%} memory stall -> {bound}")
    return stats


def main() -> None:
    workload = get_workload("blend")
    base_mem = DEFAULT_SCALE.memory_config()
    built = workload.build(Variant.VIS, DEFAULT_SCALE)

    print("1) VIS-accelerated blend on the default caches:")
    stats, machine = simulate_program(built.program, CONFIG, base_mem)
    built.validate(machine)
    baseline = describe(f"L1={base_mem.l1_size}B L2={base_mem.l2_size}B", stats)

    print("\n2) growing the caches (the paper: 'no impact'):")
    for factor in (4, 16):
        bigger = base_mem.with_l2_size(base_mem.l2_size * factor)
        bigger = bigger.with_l1_size(base_mem.l1_size * factor)
        stats, _ = simulate_program(built.program, CONFIG, bigger)
        describe(f"L1={bigger.l1_size}B L2={bigger.l2_size}B", stats)

    print("\n3) software prefetching instead (Mowry-style, Section 4.2):")
    prefetching = workload.build(Variant.VIS_PREFETCH, DEFAULT_SCALE)
    stats, machine = simulate_program(prefetching.program, CONFIG, base_mem)
    prefetching.validate(machine)
    describe("default caches + prefetch", stats)
    print(f"\n  prefetch speedup: {baseline.cycles / stats.cycles:.2f}x "
          f"({stats.memory.prefetches} prefetches, "
          f"{stats.memory.prefetch_useful} useful, "
          f"{stats.memory.prefetch_late} late)")


if __name__ == "__main__":
    main()
