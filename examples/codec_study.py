#!/usr/bin/env python
"""Study the image/video codecs: compression, fidelity, and where the
cycles go.

Encodes a synthetic image with the JPEG-style codec (both progressive
and blocked non-progressive modes) and a synthetic video with the
MPEG-style codec, reports stream sizes and reconstruction quality,
writes the images as PPM files for inspection, then simulates cjpeg-np
and mpeg-enc to show the codec benchmarks' instruction mixes.

Run:  python examples/codec_study.py [output-dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro import ProcessorConfig, SMALL_SCALE, Variant, get_workload, simulate_program
from repro.media import jpeg, mpeg
from repro.media.images import synthetic_image, synthetic_video_yuv
from repro.media.metrics import psnr
from repro.media.ppm import write_pnm


def study_jpeg(out_dir: Path) -> None:
    image = synthetic_image(SMALL_SCALE.jpeg_width, SMALL_SCALE.jpeg_height, 3)
    write_pnm(out_dir / "input.ppm", image)
    print("JPEG-style codec")
    for progressive in (False, True):
        enc = jpeg.encode(image, quality=75, progressive=progressive)
        dec = jpeg.decode(enc.data)
        mode = "progressive" if progressive else "baseline"
        print(f"  {mode:12s} {len(enc.data):6d} bytes "
              f"({image.size / len(enc.data):5.1f}x), "
              f"PSNR {psnr(image, dec.rgb):5.2f} dB, "
              f"{len(enc.scans)} scan(s)")
        write_pnm(out_dir / f"decoded_{mode}.ppm", dec.rgb)


def study_mpeg(out_dir: Path) -> None:
    frames = synthetic_video_yuv(
        SMALL_SCALE.video_width, SMALL_SCALE.video_height, 4
    )
    enc = mpeg.encode(frames, quality=75, search_range=SMALL_SCALE.search_range)
    dec = mpeg.decode(enc.data)
    raw = sum(f[0].size + f[1].size + f[2].size for f in frames)
    print("\nMPEG-style codec (I-B-B-P group of pictures)")
    print(f"  stream {len(enc.data)} bytes ({raw / len(enc.data):.1f}x), "
          f"macroblock modes: {enc.mode_counts}")
    for i, ((y, _u, _v), ftype) in enumerate(zip(dec.frames, dec.frame_types)):
        print(f"  frame {i} ({ftype}): luma PSNR {psnr(frames[i][0], y):5.2f} dB")
        write_pnm(out_dir / f"frame{i}_{ftype}.pgm", y)


def simulate_codecs() -> None:
    print("\nsimulated codec benchmarks (out-of-order 4-way, small scale)")
    config = ProcessorConfig.ooo_4way()
    memory = SMALL_SCALE.memory_config()
    for name in ("cjpeg-np", "mpeg-enc"):
        for variant in (Variant.SCALAR, Variant.VIS):
            built = get_workload(name).build(variant, SMALL_SCALE)
            stats, machine = simulate_program(built.program, config, memory)
            built.validate(machine)
            mix = ", ".join(
                f"{k} {v}" for k, v in stats.category_counts.items() if v
            )
            print(f"  {name:9s} {variant.value:7s} {stats.cycles:9d} cycles "
                  f"| {mix}")


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results/codec_study")
    out_dir.mkdir(parents=True, exist_ok=True)
    study_jpeg(out_dir)
    study_mpeg(out_dir)
    simulate_codecs()
    print(f"\nimages written to {out_dir}/")


if __name__ == "__main__":
    main()
