#!/usr/bin/env python
"""Quickstart: simulate one benchmark on the paper's machines.

Builds the ``addition`` kernel (Table 1) in its scalar and VIS forms,
runs each on the three architecture variants of Figure 1, validates
the simulated output against the numpy reference, and prints the
normalized execution-time breakdown — one benchmark's worth of
Figure 1.

Run:  python examples/quickstart.py
"""

from repro import (
    DEFAULT_SCALE,
    ProcessorConfig,
    Variant,
    get_workload,
    simulate_program,
)
from repro.experiments.report import stacked_bar

CONFIGS = (
    ProcessorConfig.inorder_1way(),
    ProcessorConfig.inorder_4way(),
    ProcessorConfig.ooo_4way(),
)


def main() -> None:
    workload = get_workload("addition")
    memory = DEFAULT_SCALE.memory_config()
    print(f"benchmark: {workload.name} — {workload.description}")
    print(f"caches: L1 {memory.l1_size}B / L2 {memory.l2_size}B "
          f"(the paper's 64K/128K scaled by {DEFAULT_SCALE.factor})\n")

    baseline_cycles = None
    for variant in (Variant.SCALAR, Variant.VIS):
        built = workload.build(variant, DEFAULT_SCALE)
        for config in CONFIGS:
            stats, machine = simulate_program(built.program, config, memory)
            built.validate(machine)  # bit-exact against the numpy reference
            if baseline_cycles is None:
                baseline_cycles = stats.cycles
            components = stats.components_normalized(baseline_cycles)
            label = f"{variant.value:7s} {config.name:18s}"
            print(f"{label} {stacked_bar(components)}   "
                  f"({stats.cycles} cycles, IPC "
                  f"{stats.instructions / stats.cycles:.2f})")
    print("\nbar legend: # busy   = FU stall   + L1-hit stall   . L1-miss stall")
    print("all six runs validated bit-exactly against the numpy reference")


if __name__ == "__main__":
    main()
