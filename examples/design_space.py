#!/usr/bin/env python
"""Explore the processor design space beyond the paper's three points.

The paper's conclusion speculates about what future media-focused
general-purpose processors should change.  With the simulator exposed
as a library, those questions are one loop away: this example sweeps
issue width, instruction-window size, and the number of VIS functional
units for one compute-bound benchmark (conv, VIS variant) and one
memory-bound benchmark (blend, VIS variant).

Run:  python examples/design_space.py
"""

from dataclasses import replace

from repro import DEFAULT_SCALE, ProcessorConfig, Variant, get_workload, simulate_program


def sweep(built, label, configs):
    memory = DEFAULT_SCALE.memory_config()
    print(f"\n{label}")
    baseline = None
    for config in configs:
        stats, _ = simulate_program(built.program, config, memory)
        if baseline is None:
            baseline = stats.cycles
        print(f"  {config.name:26s} {stats.cycles:9d} cycles "
              f"({baseline / stats.cycles:4.2f}x vs first)")


def main() -> None:
    conv = get_workload("conv").build(Variant.VIS, DEFAULT_SCALE)
    blend = get_workload("blend").build(Variant.VIS, DEFAULT_SCALE)
    base = ProcessorConfig.ooo_4way()

    width_sweep = [
        replace(base, name=f"ooo {w}-way", issue_width=w) for w in (1, 2, 4, 8)
    ]
    window_sweep = [
        replace(base, name=f"window {w}", window_size=w)
        for w in (16, 32, 64, 128, 256)
    ]
    vis_units_sweep = [
        replace(
            base,
            name=f"{n} VIS adder/mult pairs",
            vis_add_units=n,
            vis_mul_units=n,
        )
        for n in (1, 2, 4)
    ]

    sweep(conv, "conv (compute-bound): issue width", width_sweep)
    sweep(conv, "conv: instruction window", window_sweep)
    sweep(conv, "conv: VIS functional units", vis_units_sweep)
    sweep(blend, "blend (memory-bound): issue width", width_sweep)
    sweep(blend, "blend: instruction window", window_sweep)
    print(
        "\nThe compute-bound kernel scales with width and VIS units; the"
        "\nmemory-bound kernel barely moves — the paper's Section 6 point"
        "\nthat compute-side improvements re-expose the memory system."
    )


if __name__ == "__main__":
    main()
