#!/usr/bin/env python
"""Write your own media kernel against the public API.

This example builds a *new* benchmark that is not part of the paper's
suite — image inversion with a brightness floor — in both scalar and
VIS forms, validates it against numpy, and compares the two on the
out-of-order machine.  It shows the full workflow a user follows to
study their own kernel:

1. express the math in numpy (the reference),
2. emit scalar and VIS assembly with :class:`repro.ProgramBuilder`,
3. simulate with :func:`repro.simulate_program` and compare.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro import (
    DEFAULT_SCALE,
    Machine,
    ProcessorConfig,
    ProgramBuilder,
    simulate_program,
)
from repro.media.images import synthetic_gray
from repro.workloads.kernels.common import broadcast16, setup_vis_unpack


def reference(src: np.ndarray, floor: int) -> np.ndarray:
    """max(255 - x, floor) — inversion with a brightness floor."""
    return np.maximum(255 - src.astype(np.int64), floor).astype(np.uint8)


def build_scalar(data: bytes, floor: int):
    b = ProgramBuilder("invert-scalar")
    b.buffer("src", len(data), data=data)
    b.buffer("dst", len(data))
    ps, pd = b.iregs(2)
    b.la(ps, "src")
    b.la(pd, "dst")
    with b.loop(0, len(data)):
        with b.scratch(iregs=2) as (t, inv):
            keep = b.label("keep")
            b.ldb(t, ps)
            b.li(inv, 255)
            b.sub(inv, inv, t)            # 255 - x
            b.bge(inv, floor, keep, hint=True)
            b.li(inv, floor)              # brightness floor
            b.bind(keep)
            b.stb(inv, pd)
        b.add(ps, ps, 1)
        b.add(pd, pd, 1)
    return b.build()


def build_vis(data: bytes, floor: int):
    """8 pixels per iteration: 255-x via fpsub16, the floor via a
    partitioned compare + partial store (no branches at all)."""
    b = ProgramBuilder("invert-vis")
    b.buffer("src", len(data), data=data)
    b.buffer("dst", len(data))
    b.buffer("k255", 8, data=broadcast16(255 << 4))
    b.buffer("kfloor16", 8, data=broadcast16(floor << 4))
    b.buffer("kfloor8", 8, data=bytes([floor]) * 8)
    ps, pd = b.iregs(2)
    b.la(ps, "src")
    b.la(pd, "dst")
    fz = setup_vis_unpack(b, scale=3)     # pack scale: >>4 of the <<4 format
    k255, kfloor, kfloor8 = b.fregs(3)
    with b.scratch(iregs=1) as t:
        b.la(t, "k255")
        b.ldf(k255, t)
        b.la(t, "kfloor16")
        b.ldf(kfloor, t)
        b.la(t, "kfloor8")
        b.ldf(kfloor8, t)
    fs, lo, hi = b.fregs(3)
    m1, m2 = b.iregs(2)
    with b.loop(0, len(data), step=8):
        b.ldf(fs, ps)
        b.fexpand(lo, fs)                  # x << 4, lanes 0-3
        b.faligndata(hi, fs, fz)
        b.fexpand(hi, hi)                  # lanes 4-7
        b.fpsub16(lo, k255, lo)            # (255 - x) << 4
        b.fpsub16(hi, k255, hi)
        # default result: the inversion
        b.fpack16(lo, lo)
        b.fpack16(hi, hi)
        b.stfw(lo, pd, 0)
        b.stfw(hi, pd, 4)
        # floor mask: lanes where (255-x) < floor
        b.fexpand(lo, lo)
        b.fexpand(hi, hi)
        b.fcmpgt16(m1, kfloor, lo)
        b.fcmpgt16(m2, kfloor, hi)
        b.sll(m2, m2, 4)
        b.or_(m1, m1, m2)
        b.pst(kfloor8, m1, pd)             # overwrite floored pixels
        b.add(ps, ps, 8)
        b.add(pd, pd, 8)
    return b.build()


def main() -> None:
    floor = 40
    image = synthetic_gray(96, 64, seed=33)
    data = image.tobytes()
    expected = reference(np.frombuffer(data, dtype=np.uint8), floor)

    config = ProcessorConfig.ooo_4way()
    memory = DEFAULT_SCALE.memory_config()
    results = {}
    for label, build in (("scalar", build_scalar), ("vis", build_vis)):
        program = build(data, floor)
        stats, machine = simulate_program(program, config, memory)
        got = machine.read_buffer_array("dst")
        assert np.array_equal(got, expected), f"{label} output mismatch"
        results[label] = stats
        print(f"{label:7s} {stats.cycles:8d} cycles, "
              f"{stats.instructions:7d} instructions, "
              f"mispredict {stats.mispredict_rate:.1%}")
    speedup = results["scalar"].cycles / results["vis"].cycles
    print(f"\nVIS speedup: {speedup:.2f}x (branch-free via fcmpgt16 + pst)")


if __name__ == "__main__":
    main()
