"""The crash-only acceptance harness: SIGKILL at 50% of the
120-request load run, restart against the same state dir, and the
original workload still completes byte-identically with zero duplicate
simulations.

This is the subprocess twin of ``tests/test_serve_load.py`` (which
drives an in-process server): a *real* ``repro-experiments serve``
process on a *fixed* port, reconnect-enabled clients with requests in
flight, a kill -9 with no goodbye, and a restarted incarnation the
same clients heal onto.  What the test proves end to end:

* clients ride out the crash: bounded jittered reconnect plus
  idempotent resubmission of every pending request (the server's
  journal + dedup make resubmission safe), with no request dropped and
  no divergent bytes;
* the second incarnation never re-simulates a point the first one
  completed (the disk cache and journal carry the work forward), and
  simulates nothing twice itself (``duplicate_simulations == 0``);
* the post-crash state dir is clean: the journal settles to zero lag
  and ``cache gc`` sweeps the crash debris without errors.

The CI serve job runs the same choreography from the shell (scripted
client with ``--reconnect``); this test is the hermetic version.
"""

from __future__ import annotations

import asyncio
import time

from repro.experiments.gc import gc_cache
from repro.serve.client import ServeClient
from repro.serve.protocol import point_from_wire
from tests.chaos import ServeProcess, free_port
from tests.test_serve_load import (
    POINT_POOL,
    POINTS_PER_REQUEST,
    grid_for_request,
    serial_references,
)

TOTAL_REQUESTS = 120
CONNECTIONS = 12

#: real checkpoints + a roomy queue: admission control is not what
#: this test is about, surviving a kill -9 is
SERVE_ARGS = (
    "--jobs", "2", "--checkpoint-interval", "2000",
    "--queue-limit", "4096",
)


class TestCrashLoadHarness:
    def test_sigkill_at_half_load_completes_byte_identically(
        self, tmp_path
    ):
        references = serial_references()
        out_dir = tmp_path / "out"
        port = free_port()
        args = SERVE_ARGS + ("--port", str(port))

        results = asyncio.run(self._drive(out_dir, port, args))
        outcomes, stats, health, reconnects = results

        # every one of the 120 requests completed, byte-identically
        assert len(outcomes) == TOTAL_REQUESTS
        for index, outcome in enumerate(outcomes):
            grid = grid_for_request(index)
            assert outcome.ok == len(grid), (
                f"request {index}: {outcome.ok} ok of {len(grid)}"
            )
            assert outcome.failed == 0
            for spec, result in zip(grid, outcome.results):
                key = point_from_wire(spec).content_key()
                assert result == references[key], (
                    f"request {index}: divergent result for {key[:16]}"
                )

        # the kill landed mid-run and the clients actually healed
        assert reconnects >= 1, "no client ever needed to reconnect"
        # the second incarnation duplicated nothing: it simulates only
        # points the crash stranded (at most one run per unique point);
        # everything the first server completed arrives from its disk
        # cache, and its own books balance point for point
        assert stats["duplicate_simulations"] == 0
        assert stats["simulated"] <= len(POINT_POOL)
        assert stats["simulated"] + stats["cache_hits"] \
            + stats["coalesced"] == stats["points_requested"]
        # the restarted server really served the resubmitted tail of
        # the load (at most the uncompleted half, at least something)
        assert 0 < stats["points_requested"] \
            <= (TOTAL_REQUESTS - TOTAL_REQUESTS // 2) * POINTS_PER_REQUEST
        assert len(POINT_POOL) >= stats["journal_replayed"]
        assert health["journal"]["lag"] == 0
        assert health["quarantine"]["poisoned"] == 0

        # the crash debris sweeps clean
        report = gc_cache(out_dir / ".simcache")
        assert report.errors == 0

    async def _drive(self, out_dir, port, args):
        serve = await asyncio.to_thread(ServeProcess, out_dir, args)
        clients = []
        completed = []
        try:
            for _ in range(CONNECTIONS):
                client = ServeClient(
                    port=port, reconnect=30, reconnect_backoff_s=0.1
                )
                await client.connect()
                clients.append(client)

            async def one_request(index: int):
                client = clients[index % CONNECTIONS]
                outcome = await client.submit(grid_for_request(index))
                completed.append(index)
                return outcome

            tasks = [
                asyncio.create_task(one_request(index))
                for index in range(TOTAL_REQUESTS)
            ]

            # kill -9 at 50% completion, with requests still in flight
            deadline = time.monotonic() + 120
            while len(completed) < TOTAL_REQUESTS // 2:
                assert time.monotonic() < deadline, (
                    f"only {len(completed)} requests completed"
                )
                await asyncio.sleep(0.01)
            serve.sigkill_tree()
            await asyncio.to_thread(serve.wait, 30)

            # same state dir, same port: the clients' reconnect loops
            # find the new incarnation on their own
            serve = await asyncio.to_thread(
                ServeProcess, out_dir, args
            )
            outcomes = await asyncio.gather(*tasks)

            async with ServeClient(port=port) as probe:
                deadline = time.monotonic() + 60
                while (await probe.health())["journal"]["lag"] > 0:
                    assert time.monotonic() < deadline
                    await asyncio.sleep(0.05)
                health = await probe.health()
                stats = await probe.stats()
            reconnects = sum(client.reconnects for client in clients)
            return outcomes, stats, health, reconnects
        finally:
            for client in clients:
                await client.close()
            serve.sigterm()
            await asyncio.to_thread(serve.wait, 30)
