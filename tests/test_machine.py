"""Functional-machine tests: instruction semantics end to end."""

import pytest

from repro.asm import ProgramBuilder
from repro.sim import Machine, SimulationError


def run_fragment(emit, buffers=(("out", 64),), max_instructions=1_000_000):
    """Build a tiny program with ``emit(builder)`` and run it."""
    b = ProgramBuilder("fragment")
    for name, size, *rest in buffers:
        b.buffer(name, size, data=rest[0] if rest else None)
    emit(b)
    machine = Machine(b.build())
    machine.run_functional(max_instructions=max_instructions)
    return machine


def out_value(machine, signed=False):
    return int.from_bytes(machine.read_buffer("out")[:8], "little", signed=signed)


def store_result(b, reg):
    with b.scratch(iregs=1) as p:
        b.la(p, "out")
        b.stx(reg, p)


@pytest.mark.parametrize(
    "op,a,c,expected",
    [
        ("add", 7, 5, 12),
        ("sub", 7, 9, -2),
        ("mul", -3, 7, -21),
        ("div", -7, 2, -3),       # C-style truncation toward zero
        ("div", 7, -2, -3),
        ("rem", -7, 2, -1),
        ("and_", 0b1100, 0b1010, 0b1000),
        ("or_", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("andn", 0b1100, 0b1010, 0b0100),
        ("sll", 3, 4, 48),
        ("srl", 256, 4, 16),
        ("sra", -256, 4, -16),
        ("slt", -1, 0, 1),
        ("sltu", -1, 0, 0),       # unsigned: 2**64-1 < 0 is false
        ("seq", 5, 5, 1),
    ],
)
def test_integer_alu(op, a, c, expected):
    def emit(b):
        ra, rd = b.iregs(2)
        b.li(ra, a)
        getattr(b, op)(rd, ra, c)
        store_result(b, rd)

    assert out_value(run_fragment(emit), signed=True) == expected


def test_division_by_zero_raises():
    def emit(b):
        r = b.ireg()
        b.li(r, 1)
        b.div(r, r, 0)

    with pytest.raises(SimulationError, match="division by zero"):
        run_fragment(emit)


@pytest.mark.parametrize(
    "load,store,value,expected",
    [
        ("ldb", "stb", 0xF0, 0xF0),
        ("ldbs", "stb", 0xF0, -16),
        ("ldh", "sth", 0x8000, 0x8000),
        ("ldhs", "sth", 0x8000, -32768),
        ("ldw", "stw", 0x80000000, 0x80000000),
        ("ldws", "stw", 0x80000000, -(1 << 31)),
        ("ldx", "stx", (1 << 63) | 5, (1 << 63) | 5),
    ],
)
def test_load_store_sizes_and_sign(load, store, value, expected):
    def emit(b):
        r, p = b.iregs(2)
        b.la(p, "out")
        b.li(r, value)
        getattr(b, store)(r, p, 16)
        getattr(b, load)(r, p, 16)
        store_result(b, r)

    got = out_value(run_fragment(emit), signed=expected < 0)
    assert got == expected


def test_memory_bounds_checked():
    def emit(b):
        r, p = b.iregs(2)
        b.li(p, 1 << 40)
        b.ldb(r, p)

    with pytest.raises(SimulationError, match="out of range"):
        run_fragment(emit)


def test_prefetch_out_of_range_is_dropped():
    def emit(b):
        p = b.ireg()
        b.li(p, 1 << 40)
        b.pf(p)          # must not fault

    run_fragment(emit)


def test_runaway_guard():
    def emit(b):
        top = b.here()
        b.j(top)

    with pytest.raises(SimulationError, match="exceeded"):
        run_fragment(emit, max_instructions=10_000)


def test_branch_taken_and_not_taken():
    b = ProgramBuilder()
    b.buffer("out", 64)
    r, total = b.iregs(2)
    end = b.label()
    b.li(total, 0)
    b.li(r, 1)
    skip = b.label()
    b.beq(r, 0, skip)
    b.add(total, total, 1)
    b.bind(skip)
    b.bne(r, 0, end)
    b.add(total, total, 100)
    b.bind(end)
    store_result(b, total)
    machine = Machine(b.build())
    machine.run_functional()
    assert out_value(machine) == 1


def test_call_ret_and_nesting_via_trace():
    b = ProgramBuilder()
    b.buffer("out", 64)
    acc = b.ireg()
    sub = b.label("sub")
    main = b.label("main")
    b.j(main)
    b.bind(sub)
    b.add(acc, acc, 10)
    b.ret()
    b.bind(main)
    b.li(acc, 1)
    b.call(sub)
    b.call(sub)
    store_result(b, acc)
    machine = Machine(b.build())
    machine.run_functional()
    assert out_value(machine) == 21


def test_trace_events_shape():
    b = ProgramBuilder()
    src = b.buffer("src", 8, data=bytes(8))
    r, p = b.iregs(2)
    b.la(p, src)
    b.ldb(r, p, 3)
    program = b.build()
    machine = Machine(program)
    trace = machine.run_to_completion()
    # one event per retired instruction, halt excluded
    assert len(trace) == len(program.instructions) - 1
    load_event = trace[-1]
    assert load_event[1] == program.buffers["src"].address + 3


def test_reset_restores_initial_data():
    b = ProgramBuilder()
    b.buffer("src", 8, data=b"\x05" + bytes(7))
    r, p = b.iregs(2)
    b.la(p, "src")
    b.ldb(r, p)
    b.add(r, r, 1)
    b.stb(r, p)
    machine = Machine(b.build())
    machine.run_functional()
    assert machine.read_buffer("src")[0] == 6
    machine.reset()
    assert machine.read_buffer("src")[0] == 5
    machine.run_functional()
    assert machine.read_buffer("src")[0] == 6


def test_gsr_fields_and_alignaddr():
    b = ProgramBuilder()
    b.buffer("out", 64)
    r, a = b.iregs(2)
    b.li(a, 0x1234 + 5)
    b.alignaddr(r, a, 0)
    store_result(b, r)
    machine = Machine(b.build())
    machine.run_functional()
    assert out_value(machine) == (0x1234 + 5) & ~7
    from repro.isa.registers import GSR
    assert machine.regs[GSR] & 7 == (0x1234 + 5) & 7


def test_float_ops_roundtrip():
    b = ProgramBuilder()
    b.buffer("out", 64)
    ra = b.ireg()
    fa, fb = b.fregs(2)
    b.li(ra, 7)
    b.fitod(fa, ra)
    b.fitod(fb, ra)
    b.fmuld(fa, fa, fb)     # 49.0
    b.fadd(fa, fa, fb)      # 56.0
    b.fdivd(fa, fa, fb)     # 8.0
    b.fdtoi(ra, fa)
    store_result(b, ra)
    machine = Machine(b.build())
    machine.run_functional()
    assert out_value(machine) == 8
