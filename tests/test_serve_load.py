"""Load test: many concurrent clients hammering overlapping grids.

The acceptance bar for the serving layer: with ≥1000 concurrent
requests over overlapping tiny grids,

* every client receives byte-identical results (equal to a serial
  ``_simulate_point`` reference computed up front),
* the per-request source tallies add up exactly to the server's
  global counters (nothing double-counted, nothing lost), and
* **no point is simulated twice** — one underlying simulation per
  unique point, everything else cache hits or coalesced waits.

Requests pipeline over a bounded number of connections (the protocol
is id-tagged JSONL, so one socket carries many in-flight requests);
that is how a single test process sustains a thousand concurrent
requests without a thousand file descriptors.

The full 1000-request sweep runs under ``-m slow`` (the golden/CI-slow
lane, as the CI serve job configures it); the tier-1 lane runs the
same harness at 120 requests.  ``benchmarks/bench_serve.py`` reuses
this module's harness for timed runs.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.experiments.parallel import _simulate_point
from repro.serve.client import ServeClient
from repro.serve.protocol import point_from_wire
from repro.serve.server import BatchServer, ServeConfig

#: six unique tiny points; every request's grid is a rotating
#: 3-point window over this pool, so neighbouring requests overlap
#: on 2 of 3 points — maximal coalescing pressure
POINT_POOL = [
    {"benchmark": benchmark, "variant": variant, "scale": "tiny"}
    for benchmark in ("addition", "thresh", "scaling")
    for variant in ("scalar", "vis")
]

POINTS_PER_REQUEST = 3


def grid_for_request(index: int) -> list:
    return [
        POINT_POOL[(index + offset) % len(POINT_POOL)]
        for offset in range(POINTS_PER_REQUEST)
    ]


def serial_references() -> dict:
    """key -> JSON-round-tripped stats dict, computed serially through
    the batch worker entry point (the byte-identity oracle)."""
    references = {}
    for spec in POINT_POOL:
        point = point_from_wire(spec)
        stats, _elapsed, _resumed = _simulate_point(point, True)
        references[point.content_key()] = json.loads(
            json.dumps(stats.to_dict(), sort_keys=True)
        )
    return references


async def run_load(
    cache_dir,
    total_requests: int,
    connections: int,
    workers: int = 2,
    priority_mix: bool = True,
):
    """Drive ``total_requests`` concurrent submits over ``connections``
    pipelined client connections against a fresh in-process server.

    Returns ``(server, outcomes)`` after graceful shutdown.
    """
    config = ServeConfig(
        cache_dir=cache_dir,
        workers=workers,
        checkpoint=False,
        queue_limit=4096,  # admission off the table: this test is
    )                      # about dedup/coalescing, not backpressure
    server = BatchServer(config)
    await server.start()
    clients = []
    try:
        for _ in range(connections):
            client = ServeClient(port=server.port)
            await client.connect()
            clients.append(client)

        async def one_request(index: int):
            client = clients[index % connections]
            priority = (
                "high" if priority_mix and index % 7 == 0 else "normal"
            )
            return await client.submit(
                grid_for_request(index), priority=priority
            )

        outcomes = await asyncio.gather(*[
            one_request(index) for index in range(total_requests)
        ])
    finally:
        for client in clients:
            await client.close()
        await server.shutdown()
    return server, outcomes


def check_invariants(server, outcomes, total_requests: int, references,
                     expected_simulated: int = None):
    """The three load-test guarantees, asserted exactly.

    ``expected_simulated`` defaults to one simulation per unique point
    (a cold cache); pass 0 for a fully warm cache.
    """
    if expected_simulated is None:
        expected_simulated = len(POINT_POOL)
    tallies = {}
    for index, outcome in enumerate(outcomes):
        grid = grid_for_request(index)
        assert outcome.ok == len(grid), (
            f"request {index}: {outcome.ok} ok of {len(grid)}"
        )
        assert outcome.failed == 0
        for spec, result, source in zip(
            grid, outcome.results, outcome.point_sources
        ):
            key = point_from_wire(spec).content_key()
            assert result == references[key], (
                f"request {index}: divergent result for {key[:16]}"
            )
            tallies[source] = tallies.get(source, 0) + 1

    total_points = total_requests * POINTS_PER_REQUEST
    assert sum(tallies.values()) == total_points

    # per-request tallies add up exactly to the global counters
    stats = server.stats
    assert tallies.get("simulated", 0) == stats.simulated
    assert tallies.get("coalesced", 0) == stats.coalesced
    assert tallies.get("cache", 0) == stats.cache_hits
    assert stats.simulated + stats.coalesced + stats.cache_hits == \
        total_points
    assert stats.failed_points == 0
    assert stats.busy_rejections == 0

    # no point simulated twice, and every expected miss exactly once
    assert stats.simulated == expected_simulated
    assert set(server.simulated_keys) <= set(references)
    assert len(server.simulated_keys) == expected_simulated
    duplicates = {
        key: count for key, count in server.simulated_keys.items()
        if count != 1
    }
    assert duplicates == {}, f"points simulated twice: {duplicates}"


class TestServeLoad:
    def test_load_tier1_120_requests(self, tmp_path):
        """The tier-1 lane: same harness, 120 concurrent requests."""
        references = serial_references()
        server, outcomes = asyncio.run(
            run_load(tmp_path, total_requests=120, connections=12)
        )
        check_invariants(server, outcomes, 120, references)

    @pytest.mark.slow
    def test_load_1000_requests(self, tmp_path):
        """The acceptance bar: ≥1000 concurrent requests, zero
        duplicate simulations, zero divergent results."""
        references = serial_references()
        server, outcomes = asyncio.run(
            run_load(tmp_path, total_requests=1000, connections=50)
        )
        check_invariants(server, outcomes, 1000, references)
        # with 1000 requests over 6 unique points, coalescing and the
        # cache must absorb essentially everything
        assert server.stats.coalesced + server.stats.cache_hits == \
            1000 * POINTS_PER_REQUEST - len(POINT_POOL)
