"""Property-based (hypothesis) tests for the throughput analyzer.

For *randomized* tiny programs — the same strategy space as the audit
properties: random ALU / load / store / VIS / forward-branch mixes
inside a counted loop — and *randomized* processor configurations, the
bracketing contract must hold unconditionally:

    ``lower <= simulated cycles <= upper``

on both execution engines, with the instruction envelope bracketing
the retired count.  Random loop bodies exercise bound components the
curated workloads cannot (accumulator dep chains through every ALU
op, store-only memory traffic, degenerate single-instruction bodies),
and random configs exercise every resource bound (width-1 machines,
single-unit FU pools, tiny memory queues).  Hypothesis hunts for the
(program, config) pair that breaks the analyzer's soundness proof.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analyze import analyze_throughput
from repro.cpu.config import ProcessorConfig
from repro.mem import MemoryConfig
from repro.experiments.runner import simulate_program

from tests.test_audit_properties import build_random_program, program_shapes

ENGINES = ("vector", "scalar")

#: randomized machines: both pipeline models, widths 1-8, small and
#: large windows/queues, single- and dual-unit FU pools
processor_configs = st.builds(
    ProcessorConfig,
    name=st.just("randcfg"),
    out_of_order=st.booleans(),
    issue_width=st.sampled_from((1, 2, 4, 8)),
    window_size=st.sampled_from((8, 16, 64)),
    mem_queue_size=st.sampled_from((4, 16, 32)),
    mispredict_penalty=st.sampled_from((3, 7)),
    int_alu_units=st.integers(1, 2),
    fp_units=st.integers(1, 2),
    addr_units=st.integers(1, 2),
    vis_add_units=st.integers(1, 2),
    vis_mul_units=st.integers(1, 2),
)


def _mem():
    # tiny caches so random programs actually miss
    return MemoryConfig().scaled(64)


class TestRandomProgramBracketing:
    @given(program_shapes, processor_configs)
    @settings(max_examples=60, deadline=None)
    def test_bounds_bracket_random_programs(self, shape, config):
        """lower <= cycles <= upper for every random (program, config)
        pair the verifier accepts, on both engines."""
        program = build_random_program(*shape)
        mem = _mem()
        report = analyze_throughput(program, config, mem)
        assert report.upper is not None, (
            "builder loops are counted; the upper bound must be finite"
        )
        assert report.lower <= report.upper
        for engine in ENGINES:
            stats, _ = simulate_program(
                program, config, mem, "randprog", engine=engine
            )
            assert report.lower <= stats.cycles <= report.upper, (
                f"bracketing violated [{engine}] {config.content_key()}: "
                f"[{report.lower}, {report.upper}] vs {stats.cycles}"
            )
            assert report.instr_min <= stats.instructions
            assert report.instr_max is None or (
                stats.instructions <= report.instr_max
            )

    @given(program_shapes, processor_configs)
    @settings(max_examples=20, deadline=None)
    def test_attribution_is_well_formed(self, shape, config):
        """The binding resource is always one of the components, the
        lower bound is their max, and per-block records cover every
        reachable instruction of the main region."""
        program = build_random_program(*shape)
        report = analyze_throughput(program, config, _mem())
        assert report.lower == max(report.lower_components.values())
        assert report.lower_binding in report.lower_components
        for block in report.blocks:
            assert block.first <= block.last
            assert block.bound_cycles >= 0
