"""Experiment-harness tests: the paper's qualitative shapes hold on
the tiny scale, and the drivers produce well-formed tables."""

import pytest

from repro.cpu.config import ProcessorConfig
from repro.experiments import figure1, figure2, figure3, branch_stats, cache_sweep
from repro.experiments.report import format_table, stacked_bar, write_csv
from repro.experiments.runner import RunCache
from repro.workloads import TINY_SCALE, Variant

SUBSET = ("addition", "thresh")


@pytest.fixture(scope="module")
def cache():
    return RunCache(scale=TINY_SCALE)


class TestFigure1:
    @pytest.fixture(scope="class")
    def results(self):
        return figure1(RunCache(scale=TINY_SCALE), benchmarks=SUBSET)

    def test_six_bars_per_benchmark(self, results):
        _headers, rows, _raw = results
        assert len(rows) == 6 * len(SUBSET)

    def test_vis_faster_than_scalar(self, results):
        _h, _r, raw = results
        for name in SUBSET:
            scalar = raw[(name, Variant.SCALAR, "out-of-order 4-way")]
            vis = raw[(name, Variant.VIS, "out-of-order 4-way")]
            assert vis.cycles < scalar.cycles

    def test_architecture_ordering(self, results):
        _h, _r, raw = results
        for name in SUBSET:
            one = raw[(name, Variant.SCALAR, "in-order 1-way")]
            four = raw[(name, Variant.SCALAR, "in-order 4-way")]
            ooo = raw[(name, Variant.SCALAR, "out-of-order 4-way")]
            assert ooo.cycles <= four.cycles <= one.cycles

    def test_components_sum_to_time(self, results):
        _h, _r, raw = results
        for stats in raw.values():
            stats.check_consistency()


class TestFigure2:
    def test_vis_shrinks_totals(self, cache):
        _h, _r, raw = figure2(cache, benchmarks=SUBSET)
        for name in SUBSET:
            base = raw[(name, Variant.SCALAR)]
            vis = raw[(name, Variant.VIS)]
            assert vis.instructions < base.instructions
            assert vis.category_counts["VIS"] > 0
            assert base.category_counts["VIS"] == 0
            assert vis.category_counts["FU"] < base.category_counts["FU"]


class TestFigure3:
    def test_prefetches_are_issued_and_useful(self, cache):
        # speedups need realistically sized caches (asserted at the
        # default scale in benchmarks/bench_figure3.py); at the tiny
        # scale we check the machinery: prefetches issue and hit
        _h, _r, raw = figure3(cache, benchmarks=("addition",))
        base, pf = raw["addition"]
        assert base.memory.prefetches == 0
        assert pf.memory.prefetches > 0
        assert pf.memory.prefetch_useful > 0


class TestSweeps:
    def test_l2_sweep_monotone_non_increasing(self, cache):
        _h, rows, raw = cache_sweep(cache, "l2", benchmarks=("addition",))
        cycles = [
            stats.cycles for (name, _size), stats in sorted(
                raw.items(), key=lambda kv: kv[0][1]
            )
        ]
        assert all(b <= a * 1.01 for a, b in zip(cycles, cycles[1:]))

    def test_streaming_kernel_is_cache_size_insensitive(self, cache):
        _h, rows, raw = cache_sweep(cache, "l2", benchmarks=("addition",))
        sizes = sorted(size for _n, size in raw)
        small = raw[("addition", sizes[0])].cycles
        large = raw[("addition", sizes[-1])].cycles
        assert small / large < 1.25  # paper: "no impact" on the kernels


class TestBranchStats:
    def test_vis_removes_thresh_mispredicts(self, cache):
        _h, _r, raw = branch_stats(cache, benchmarks=("thresh",))
        base, vis = raw["thresh"]
        assert base.mispredict_rate > 0.01
        assert vis.mispredict_rate < base.mispredict_rate


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "bb"], [["x", 1], ["yyy", 22]], title="T")
        assert "T" in text and "yyy" in text and "22" in text

    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", ["a"], [[1], [2]])
        assert path.read_text().splitlines() == ["a", "1", "2"]

    def test_stacked_bar(self):
        bar = stacked_bar({"Busy": 50.0, "FU stall": 25.0, "L1 hit": 0.0,
                           "L1 miss": 25.0})
        assert bar.count("#") > bar.count("=") > 0


class TestDeterminism:
    def test_same_run_same_cycles(self, cache):
        config = ProcessorConfig.ooo_4way()
        mem = TINY_SCALE.memory_config()
        first = cache.run("thresh", Variant.VIS, config, mem)
        second = cache.run("thresh", Variant.VIS, config, mem)
        assert first.cycles == second.cycles
        assert first.instructions == second.instructions
