"""Static-verifier tests: seeded defects, the pre-run gate, the
persistent verdict memo, and the proven-bounds property check.

The seeded-defect fixtures are the analyzer's regression vocabulary:
each one plants a distinct bug class in an otherwise-well-formed
program and asserts the verifier reports it under a stable diagnostic
code.  The hypothesis property test closes the loop with the dynamic
side: any program the analyzer accepts must execute with every proven
memory access inside its proven byte interval, checked against the
functional event stream — the same ``(static index, address)`` stream
the trace/audit layer certifies against the timing model.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze import (
    ANALYZER_VERSION,
    Severity,
    VerificationError,
    analyze_program,
    program_digest,
    verify_program,
)
from repro.analyze.absint import ACCESS_WIDTH
from repro.asm import ProgramBuilder
from repro.asm.program import Program
from repro.cpu.config import ProcessorConfig
from repro.isa.instruction import Instruction
from repro.sim import Machine
from repro.workloads import TINY_SCALE


# ---------------------------------------------------------------------------
# Fixture programs: one seeded defect each
# ---------------------------------------------------------------------------


def _uninit_program() -> Program:
    """Reads a register no path ever wrote."""
    b = ProgramBuilder("seed-uninit")
    dst, src = b.iregs(2)
    b.add(dst, src, 1)
    b.release(dst, src)
    return b.build()


def _oob_program() -> Program:
    """Loads 4 bytes at offset 64 of an 8-byte buffer."""
    b = ProgramBuilder("seed-oob")
    b.buffer("buf", 8)
    p = b.ireg()
    b.la(p, "buf")
    with b.scratch(iregs=1) as t:
        b.ldw(t, p, 64)
    b.release(p)
    return b.build()


def _falloff_program() -> Program:
    """Raw program whose only path runs off the end (no halt)."""
    return Program(
        instructions=[Instruction("add", dst=1, srcs=(0,), imm=1)],
        buffers={}, memory_size=0x1000, name="seed-falloff",
    )


def _badtarget_program() -> Program:
    """Branch whose static target is outside the program."""
    return Program(
        instructions=[
            Instruction("beq", srcs=(0, 0), target=99),
            Instruction("halt"),
        ],
        buffers={}, memory_size=0x1000, name="seed-badtarget",
    )


def _noalign_program() -> Program:
    """faligndata with no dominating alignaddr (GSR align unset)."""
    b = ProgramBuilder("seed-noalign")
    fa, fb, fd = b.fregs(3)
    b.fzero(fa)
    b.fzero(fb)
    b.faligndata(fd, fa, fb)
    b.release(fa, fb, fd)
    return b.build()


def _noscale_program() -> Program:
    """fpack16 with no dominating wrgsr (GSR scale unset)."""
    b = ProgramBuilder("seed-noscale")
    fa, fd = b.fregs(2)
    b.fzero(fa)
    b.fpack16(fd, fa)
    b.release(fa, fd)
    return b.build()


def _deadwrite_program() -> Program:
    """First write overwritten before any read."""
    b = ProgramBuilder("seed-deadwrite")
    r = b.ireg()
    b.li(r, 1)
    b.li(r, 2)
    b.release(r)
    return b.build()


def _unreachable_program() -> Program:
    """Instructions jumped over by every path."""
    b = ProgramBuilder("seed-unreach")
    done = b.label()
    b.j(done)
    r = b.ireg()
    b.li(r, 1)
    b.release(r)
    b.bind(done)
    return b.build()


#: (factory, expected code, gates without --strict)
SEEDED_DEFECTS = [
    (_uninit_program, "E-UNINIT", True),
    (_oob_program, "E-OOB", True),
    (_falloff_program, "E-FALLOFF", True),
    (_badtarget_program, "E-BADTARGET", True),
    (_noalign_program, "V-NOALIGN", True),
    (_noscale_program, "V-NOSCALE", True),
    (_deadwrite_program, "W-DEADWRITE", False),
    (_unreachable_program, "W-UNREACHABLE", False),
]


class TestSeededDefects:
    @pytest.mark.parametrize(
        "factory,code,is_error",
        SEEDED_DEFECTS,
        ids=[code for _, code, _ in SEEDED_DEFECTS],
    )
    def test_defect_reported_under_stable_code(self, factory, code, is_error):
        report = analyze_program(factory())
        assert code in report.codes()
        assert not report.ok(strict=True)
        assert report.ok() == (not is_error)
        found = [d for d in report.diagnostics if d.code == code]
        assert found and all(d.index >= 0 for d in found)
        assert all(d.hint for d in found), "every finding carries a fix hint"

    def test_defect_codes_are_distinct(self):
        codes = [code for _, code, _ in SEEDED_DEFECTS]
        assert len(set(codes)) == len(codes) >= 6

    @pytest.mark.parametrize(
        "factory,code",
        [(f, c) for f, c, is_error in SEEDED_DEFECTS if is_error],
        ids=[c for _, c, e in SEEDED_DEFECTS if e],
    )
    def test_errors_gate_by_default(self, factory, code):
        with pytest.raises(VerificationError) as excinfo:
            verify_program(factory())
        assert code in str(excinfo.value)
        assert excinfo.value.report.codes()  # full report attached

    @pytest.mark.parametrize(
        "factory,code",
        [(f, c) for f, c, is_error in SEEDED_DEFECTS if not is_error],
        ids=[c for _, c, e in SEEDED_DEFECTS if not e],
    )
    def test_warnings_gate_only_under_strict(self, factory, code):
        program = factory()
        verify_program(program)  # does not raise
        with pytest.raises(VerificationError):
            verify_program(program, strict=True)


class TestGateWiring:
    def test_simulate_program_refuses_broken_program(self):
        from repro.experiments.runner import simulate_program

        config = ProcessorConfig.inorder_1way()
        mem = TINY_SCALE.memory_config()
        program = _uninit_program()
        with pytest.raises(VerificationError):
            simulate_program(program, config, mem)
        # --no-lint escape hatch: the same program executes fine (the
        # machine zero-initializes registers; the bug is still a bug)
        stats, _ = simulate_program(program, config, mem, lint=False)
        assert stats.instructions > 0

    def test_waiver_demotes_warning_to_info(self):
        b = ProgramBuilder("waived")
        r = b.ireg()
        with b.waive("W-DEADWRITE", reason="defensive reset"):
            b.li(r, 1)
        b.li(r, 2)
        b.release(r)
        report = analyze_program(b.build())
        assert report.ok(strict=True)
        assert any(
            d.code == "W-DEADWRITE" and d.severity == Severity.INFO
            for d in report.diagnostics
        )


# ---------------------------------------------------------------------------
# Persistent verdict memo
# ---------------------------------------------------------------------------


def _clean_program() -> Program:
    b = ProgramBuilder("memo-clean")
    b.buffer("buf", 64, align=8)
    p = b.ireg()
    b.la(p, "buf")
    with b.scratch(iregs=1) as t:
        b.ldx(t, p)
        b.stx(t, p, 8)
    b.release(p)
    return b.build()


class TestVerdictMemo:
    def test_digest_stable_across_identical_builds(self):
        assert program_digest(_clean_program()) == program_digest(
            _clean_program()
        )

    def test_digest_sensitive_to_any_semantic_field(self):
        base = _clean_program()
        mutated = _clean_program()
        mutated.instructions[-2].imm = 16  # the stx offset
        assert program_digest(base) != program_digest(mutated)

    def test_memo_hit_skips_analysis(self, tmp_path):
        verify_program(_clean_program(), memo_dir=tmp_path)
        assert list(tmp_path.glob("*.json"))
        fresh = _clean_program()
        report = verify_program(fresh, memo_dir=tmp_path)
        assert report.ok()
        # the full analysis never ran on the fresh object: the verdict
        # came from disk, so no report was memoized on the program
        assert getattr(fresh, "_analysis_report", None) is None

    def test_failing_verdict_replayed_from_memo(self, tmp_path):
        with pytest.raises(VerificationError):
            verify_program(_oob_program(), memo_dir=tmp_path)
        fresh = _oob_program()
        with pytest.raises(VerificationError) as excinfo:
            verify_program(fresh, memo_dir=tmp_path)
        assert "E-OOB" in str(excinfo.value)
        assert getattr(fresh, "_analysis_report", None) is None

    def test_corrupt_record_falls_back_to_full_analysis(self, tmp_path):
        verify_program(_clean_program(), memo_dir=tmp_path)
        (record,) = tmp_path.glob("*.json")
        record.write_text("not json{")
        fresh = _clean_program()
        assert verify_program(fresh, memo_dir=tmp_path).ok()
        assert getattr(fresh, "_analysis_report", None) is not None
        # and the record was repaired in place
        assert json.loads(record.read_text())["digest"] == record.stem

    def test_version_mismatch_record_rejected(self, tmp_path):
        verify_program(_clean_program(), memo_dir=tmp_path)
        (record,) = tmp_path.glob("*.json")
        doc = json.loads(record.read_text())
        doc["analyzer_version"] = ANALYZER_VERSION + 1
        record.write_text(json.dumps(doc))
        fresh = _clean_program()
        assert verify_program(fresh, memo_dir=tmp_path).ok()
        assert getattr(fresh, "_analysis_report", None) is not None


# ---------------------------------------------------------------------------
# Property: accepted programs stay inside their proven bounds
# ---------------------------------------------------------------------------


_LOAD_WIDTH = {"ldb": 1, "ldh": 2, "ldw": 4, "ldx": 8}


def _strided_reduction(op: str, n: int, stride_e: int, extra: int) -> Program:
    """A counted loop striding ``op`` loads through a buffer sized to
    exactly fit, reduced into a stored accumulator."""
    width = _LOAD_WIDTH[op]
    b = ProgramBuilder(f"prop-{op}-{n}-{stride_e}-{extra}")
    size = (n - 1) * stride_e * width + width + extra
    b.buffer("buf", size, align=64, data=bytes(size))
    b.buffer("res", 8, align=8)
    p, acc, rp = b.iregs(3)
    b.la(p, "buf")
    b.li(acc, 0)
    with b.loop(0, n):
        with b.scratch(iregs=1) as t:
            getattr(b, op)(t, p)
            b.add(acc, acc, t)
        b.add(p, p, stride_e * width)
    b.la(rp, "res")
    b.stx(acc, rp)
    b.release(p, acc, rp)
    return b.build()


class TestProvenBoundsProperty:
    @given(
        op=st.sampled_from(sorted(_LOAD_WIDTH)),
        n=st.integers(1, 24),
        stride_e=st.integers(1, 16),
        extra=st.integers(0, 32),
    )
    @settings(max_examples=40, deadline=None)
    def test_accepted_programs_execute_within_proven_bounds(
        self, op, n, stride_e, extra
    ):
        program = _strided_reduction(op, n, stride_e, extra)
        report = analyze_program(program)
        assert report.ok(), report.format()
        # this loop shape is fully provable: every access checked is
        # proven to a concrete byte interval
        assert report.checked_accesses == len(report.proven_accesses) == 2
        # dynamic cross-check against the functional event stream (the
        # stream the audit layer certifies against the timing trace):
        # every executed access lands inside its proven interval
        proven = report.proven_accesses
        hits = 0
        for chunk in Machine(program).run():
            for idx, addr in chunk:
                width = ACCESS_WIDTH.get(program.instructions[idx].op)
                if width is None or idx not in proven:
                    continue
                lo, hi = proven[idx]
                assert lo <= addr and addr + width - 1 <= hi, (
                    f"@{idx}: {addr:#x}+{width} outside proven "
                    f"[{lo:#x}, {hi:#x}]"
                )
                hits += 1
        assert hits == n + 1  # n loop loads + the result store

    def test_gate_composes_with_audit(self):
        """lint + audit in one run: the gate passes the program to the
        simulator, and the cycle-attribution audit then proves the
        timing decomposition over the same execution."""
        from repro.experiments.runner import audited_simulate

        program = _strided_reduction("ldw", 8, 2, 0)
        stats, audit_report, _ = audited_simulate(
            program, ProcessorConfig.ooo_4way(), TINY_SCALE.memory_config()
        )
        assert stats.instructions > 0
        assert audit_report.ok
        assert audit_report.events_seen > 0
