"""Chaos suite for the fault-tolerance layer (`repro.experiments.faults`).

Exercises every failure class the runner is supposed to survive:
SIGKILLed workers (pool breakage + rebuild + retry), hung workers past
``--point-timeout``, deterministic in-point exceptions (fail-fast
``GridFailure`` vs ``--keep-going`` FAILED markers), corrupted and
truncated disk-cache records (quarantine + recompute), torn manifest
lines, and a full kill-at-50%/``--resume`` round trip through the CLI
producing byte-identical CSVs.

Faults are injected deterministically through the env-gated hook in
``repro.experiments.faults.maybe_inject`` — see ``tests/chaos.py``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cpu.config import ProcessorConfig
from repro.experiments import figures
from repro.experiments.cli import EXIT_GRID_FAILURES, main
from repro.experiments.faults import (
    STATUS_AUDIT,
    STATUS_FAILED,
    STATUS_TIMEOUT,
    STATUS_WORKER_LOST,
    GridFailure,
    PointFailure,
    PointTimeout,
    RetryPolicy,
    classify,
    point_alarm,
)
from repro.experiments.parallel import DiskCache, ParallelRunner, SimPoint
from repro.sim.machine import Machine, SimulationError
from repro.trace import AuditError
from repro.workloads.base import Variant
from repro.workloads.params import TINY_SCALE
from tests.chaos import FaultPlan

SUBSET = ("addition", "thresh")
CONFIG = ProcessorConfig.inorder_1way()


def _grid(benchmarks=SUBSET, variants=(Variant.SCALAR, Variant.VIS)):
    mem = TINY_SCALE.memory_config()
    return [
        SimPoint(name, variant, CONFIG, mem, TINY_SCALE)
        for name in benchmarks
        for variant in variants
    ]


def _fingerprint(stats_list):
    return [s.to_dict() for s in stats_list]


# ---------------------------------------------------------------------------
# Taxonomy / policy units
# ---------------------------------------------------------------------------


class TestClassify:
    def test_arbitrary_exception_is_deterministic(self):
        assert classify(RuntimeError("boom")) == (STATUS_FAILED, False)
        assert classify(SimulationError("spin")) == (STATUS_FAILED, False)

    def test_timeout_is_deterministic(self):
        assert classify(PointTimeout("slow")) == (STATUS_TIMEOUT, False)

    def test_pool_breakage_is_transient(self):
        from concurrent.futures.process import BrokenProcessPool

        assert classify(BrokenProcessPool()) == (STATUS_WORKER_LOST, True)

    def test_audit_never_isolated(self):
        status, transient = classify(AuditError("divergence"))
        assert status == STATUS_AUDIT and not transient


class TestRetryPolicy:
    def test_only_transient_statuses_retry(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(STATUS_WORKER_LOST, 1)
        assert policy.should_retry(STATUS_WORKER_LOST, 2)
        assert not policy.should_retry(STATUS_WORKER_LOST, 3)
        for status in (STATUS_FAILED, STATUS_TIMEOUT, STATUS_AUDIT):
            assert not policy.should_retry(status, 1)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_retries=3, base_delay=0.1, max_delay=0.3)
        for attempt in (1, 2, 3):
            first = policy.delay("k", attempt)
            assert first == policy.delay("k", attempt)  # pure function
            raw = min(0.3, 0.1 * 2 ** (attempt - 1))
            assert raw / 2 <= first <= raw
        assert policy.delay("k", 1) != policy.delay("other", 1)

    def test_zero_retries_disables(self):
        assert not RetryPolicy(max_retries=0).should_retry(
            STATUS_WORKER_LOST, 1
        )


class TestPointFailure:
    def test_marker_and_summary_name_the_point(self):
        failure = PointFailure.from_exception(
            RuntimeError("boom"), "addition[vis]@ooo", key="abc", attempts=2
        )
        assert failure.marker() == "FAILED(failed)"
        assert "addition[vis]@ooo" in failure.summary()
        assert "RuntimeError" in failure.summary()
        assert "RuntimeError" in failure.traceback_text
        assert failure.to_dict()["attempts"] == 2

    def test_grid_failure_names_the_point(self):
        failure = PointFailure.from_exception(
            RuntimeError("boom"), "thresh[scalar]@1way"
        )
        with pytest.raises(GridFailure, match="thresh"):
            raise GridFailure(failure)


# ---------------------------------------------------------------------------
# Watchdogs
# ---------------------------------------------------------------------------


class TestWatchdogs:
    def test_point_alarm_interrupts_pure_python_loop(self):
        with pytest.raises(PointTimeout, match="0.2"):
            with point_alarm(0.2, "spin-test"):
                while True:
                    pass

    def test_point_alarm_inert_when_disabled(self):
        with point_alarm(None):
            pass  # must not touch signal state

    def test_machine_default_step_budget_stops_runaway(self):
        """An infinite loop trips the size-proportional default budget
        in about a second — no explicit max_instructions needed."""
        from repro.asm import ProgramBuilder

        from repro.sim.machine import (
            STEP_BUDGET_BASE,
            STEP_BUDGET_PER_BYTE,
            STEP_BUDGET_PER_INSTRUCTION,
        )

        b = ProgramBuilder("runaway")
        top = b.here()
        b.j(top)
        machine = Machine(b.build())
        program = machine.program
        budget = machine.default_step_budget()
        assert budget == (
            STEP_BUDGET_BASE
            + STEP_BUDGET_PER_INSTRUCTION * len(program.instructions)
            + STEP_BUDGET_PER_BYTE * machine.memory_size
        )
        # max_instructions=None resolves to the default budget (shrunk
        # here so the test trips in milliseconds, not minutes)
        machine.default_step_budget = lambda: 10_000
        with pytest.raises(SimulationError, match="step-budget watchdog"):
            machine.run_functional()

    def test_machine_budget_scales_with_program(self):
        from repro.workloads.suite import get

        built = get("addition").build(Variant.SCALAR, TINY_SCALE)
        machine = Machine(built.program)
        # real workloads fit comfortably inside their own budget
        machine.run_functional()

    def test_pipeline_cycle_budget(self):
        """max_cycles bounds the timing model independently of the
        functional step budget."""
        from repro.experiments.runner import RunCache

        cache = RunCache(scale=TINY_SCALE, max_cycles=50)
        with pytest.raises(SimulationError, match="cycle-budget watchdog"):
            cache.run(
                "addition", Variant.SCALAR, CONFIG,
                TINY_SCALE.memory_config(),
            )


# ---------------------------------------------------------------------------
# Cache hardening
# ---------------------------------------------------------------------------


class TestCacheHardening:
    def _prime(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        runner = ParallelRunner(scale=TINY_SCALE, jobs=1, cache=cache)
        point = _grid(("addition",), (Variant.SCALAR,))[0]
        [stats] = runner.run_points([point])
        return cache, point, stats

    def test_corrupted_record_quarantined_and_recomputed(
        self, tmp_path, caplog
    ):
        cache, point, stats = self._prime(tmp_path)
        path = cache.path_for(point.content_key())
        record = json.loads(path.read_text())
        record["stats"]["cycles"] = 1  # bit-rot: checksum now mismatches
        path.write_text(json.dumps(record))

        with caplog.at_level("WARNING", logger="repro.experiments.cache"):
            assert cache.load(point.content_key()) is None
        assert cache.quarantined == 1
        assert "quarantined" in caplog.text and "checksum" in caplog.text
        qdir = cache.root / "quarantine"
        assert list(qdir.glob("*.json")), "corrupt record moved aside"

        # the point recomputes to the same stats and re-populates
        runner = ParallelRunner(scale=TINY_SCALE, jobs=1, cache=cache)
        [again] = runner.run_points([point])
        assert again.to_dict() == stats.to_dict()
        assert runner.simulated == 1 and cache.load(point.content_key())

    def test_truncated_record_quarantined(self, tmp_path, caplog):
        cache, point, _stats = self._prime(tmp_path)
        path = cache.path_for(point.content_key())
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])  # torn write
        with caplog.at_level("WARNING", logger="repro.experiments.cache"):
            assert cache.load(point.content_key()) is None
        assert cache.quarantined == 1
        assert "torn write" in caplog.text

    def test_stale_version_is_plain_miss_not_quarantine(self, tmp_path):
        cache, point, _stats = self._prime(tmp_path)
        path = cache.path_for(point.content_key())
        record = json.loads(path.read_text())
        record["version"] = "0.0"
        path.write_text(json.dumps(record))
        assert cache.load(point.content_key()) is None
        assert cache.quarantined == 0

    def test_write_failure_logged_not_swallowed(
        self, tmp_path, caplog
    ):
        cache, point, stats = self._prime(tmp_path)
        import shutil

        shutil.rmtree(cache.root)  # yank the directory out from under it
        with caplog.at_level("WARNING", logger="repro.experiments.cache"):
            assert cache.store(point.content_key(), stats) is None
        assert cache.write_errors == 1
        assert "cache write failed" in caplog.text

    def test_unwritable_cache_root_degrades_loudly(self, tmp_path, caplog):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        with caplog.at_level("WARNING", logger="repro.experiments.cache"):
            cache = DiskCache(blocker / "cache")
        assert cache.read_only
        assert "caching disabled" in caplog.text


# ---------------------------------------------------------------------------
# Injected faults through the runner
# ---------------------------------------------------------------------------


class TestInjectedFaults:
    def test_error_fails_fast_naming_the_point(self, tmp_path):
        plan = FaultPlan(tmp_path, [
            {"match": "thresh[vis]", "action": "error", "times": -1},
        ])
        runner = ParallelRunner(scale=TINY_SCALE, jobs=1)
        with plan, pytest.raises(GridFailure, match=r"thresh\[vis\]"):
            runner.run_points(_grid())

    def test_keep_going_completes_grid_with_markers(self, tmp_path):
        plan = FaultPlan(tmp_path, [
            {"match": "thresh[vis]", "action": "error", "times": -1},
        ])
        runner = ParallelRunner(scale=TINY_SCALE, jobs=1, keep_going=True)
        with plan:
            results = runner.run_points(_grid())
        failed = [r for r in results if getattr(r, "failed", False)]
        assert len(failed) == 1
        assert failed[0].marker() == "FAILED(failed)"
        assert "thresh[vis]" in failed[0].label
        assert failed[0].error_type == "RuntimeError"
        ok = [r for r in results if not getattr(r, "failed", False)]
        assert len(ok) == len(_grid()) - 1  # the rest completed
        assert len(runner.failures) == 1

    def test_killed_worker_retried_and_recovered(self, tmp_path):
        """SIGKILLing one worker breaks the whole pool; the runner
        rebuilds it, retries the lost points, and still produces the
        exact same stats as a clean run."""
        clean = ParallelRunner(scale=TINY_SCALE, jobs=1).run_points(_grid())
        plan = FaultPlan(tmp_path, [
            {"match": "addition[scalar]", "action": "kill", "times": 1},
        ])
        runner = ParallelRunner(scale=TINY_SCALE, jobs=2)
        with plan:
            results = runner.run_points(_grid())
        assert plan.shots_fired(0) == 1, "the kill actually fired"
        assert runner.pool_rebuilds >= 1
        assert runner.retried >= 1
        assert _fingerprint(results) == _fingerprint(clean)

    def test_repeated_kills_exhaust_retries_into_worker_lost(self, tmp_path):
        # Pool breakage cannot attribute blame between multiple
        # in-flight points, so an *innocent* neighbour racing the second
        # kill would sometimes be charged both losses and exhaust too —
        # a timing flake.  Killing every point in a two-point grid makes
        # the outcome deterministic: both must exhaust, whichever way
        # the collateral charges land (the innocent-bystander recovery
        # path is covered by test_killed_worker_retried_and_recovered).
        plan = FaultPlan(tmp_path, [
            {"match": "addition[scalar]", "action": "kill", "times": -1},
            {"match": "addition[vis]", "action": "kill", "times": -1},
        ])
        runner = ParallelRunner(
            scale=TINY_SCALE, jobs=2, keep_going=True,
            retry=RetryPolicy(max_retries=1, base_delay=0.01),
        )
        with plan:
            results = runner.run_points(
                _grid(("addition",), (Variant.SCALAR, Variant.VIS))
            )
        failed = [r for r in results if getattr(r, "failed", False)]
        assert len(failed) == 2
        for f in failed:
            assert f.status == STATUS_WORKER_LOST
            assert f.marker() == "FAILED(worker-lost)"
            assert f.attempts == 2  # first try + one retry

    def test_hung_worker_times_out(self, tmp_path):
        plan = FaultPlan(tmp_path, [
            {"match": "thresh[scalar]", "action": "hang"},
        ])
        runner = ParallelRunner(
            scale=TINY_SCALE, jobs=2, keep_going=True, point_timeout=1.0,
        )
        start = time.monotonic()
        with plan:
            results = runner.run_points(_grid())
        failed = [r for r in results if getattr(r, "failed", False)]
        assert len(failed) == 1
        assert failed[0].status == STATUS_TIMEOUT
        assert "point-timeout" in failed[0].message
        # the SIGALRM watchdog fired, not the 3600s sleep
        assert time.monotonic() - start < 60

    def test_straggler_just_finishes(self, tmp_path):
        """A slow point inside the timeout is not a failure."""
        plan = FaultPlan(tmp_path, [
            {"match": "addition[vis]", "action": "sleep", "seconds": 0.3},
        ])
        clean = ParallelRunner(scale=TINY_SCALE, jobs=1).run_points(_grid())
        runner = ParallelRunner(
            scale=TINY_SCALE, jobs=2, point_timeout=30.0,
        )
        with plan:
            results = runner.run_points(_grid())
        assert not runner.failures
        assert _fingerprint(results) == _fingerprint(clean)

    def test_combined_chaos_run(self, tmp_path):
        """The acceptance scenario, all at once: one worker SIGKILL,
        one corrupted cache entry, one hung point.  Under --keep-going
        the grid completes, the kill is retried away, the corrupt
        record is quarantined + recomputed, and exactly the one
        unrecoverable fault (the hang) is reported."""
        grid = _grid()  # addition/thresh x scalar/vis
        clean = ParallelRunner(scale=TINY_SCALE, jobs=1).run_points(grid)
        # prime the cache with ONLY the first point, then corrupt its
        # record — every other point must actually simulate, so the
        # injected faults below really fire
        cache = DiskCache(tmp_path / "cache")
        ParallelRunner(scale=TINY_SCALE, jobs=1, cache=cache).run_points(
            grid[:1]
        )
        path = cache.path_for(grid[0].content_key())
        path.write_bytes(path.read_bytes()[:40])

        plan = FaultPlan(tmp_path, [
            {"match": "addition[vis]", "action": "kill", "times": 1},
            {"match": "thresh[scalar]", "action": "hang", "times": -1},
        ])
        cache2 = DiskCache(tmp_path / "cache")
        runner = ParallelRunner(
            scale=TINY_SCALE, jobs=2, cache=cache2, keep_going=True,
            point_timeout=1.0,
            retry=RetryPolicy(max_retries=2, base_delay=0.01),
        )
        with plan:
            results = runner.run_points(grid)

        # exactly the injected unrecoverable failure is reported
        assert [f.status for f in runner.failures] == [STATUS_TIMEOUT]
        assert "thresh[scalar]" in runner.failures[0].label
        # the corrupted record was quarantined and its point recomputed
        assert cache2.quarantined == 1
        # the killed worker's point was retried to success
        assert runner.pool_rebuilds >= 1
        # every other point matches an uninterrupted run exactly
        for point, got, want in zip(grid, results, clean):
            if getattr(got, "failed", False):
                continue
            assert got.to_dict() == want.to_dict(), point.label()

    def test_manifest_journals_failures(self, tmp_path):
        from repro.experiments.faults import RunManifest

        plan = FaultPlan(tmp_path, [
            {"match": "thresh[vis]", "action": "error", "times": -1},
        ])
        manifest = RunManifest(tmp_path / "m.jsonl", cache_version="t")
        runner = ParallelRunner(
            scale=TINY_SCALE, jobs=1, keep_going=True, manifest=manifest,
        )
        with plan:
            runner.run_points(_grid())
        manifest.close()
        lines = [
            json.loads(line)
            for line in (tmp_path / "m.jsonl").read_text().splitlines()
        ]
        ok = [l for l in lines if l.get("status") == "ok"]
        bad = [l for l in lines if l.get("status") == STATUS_FAILED]
        assert len(ok) == len(_grid()) - 1
        assert len(bad) == 1 and "thresh[vis]" in bad[0]["label"]


# ---------------------------------------------------------------------------
# FAILED markers in figures
# ---------------------------------------------------------------------------


class TestFigureMarkers:
    def test_failed_point_renders_marker_row(self, tmp_path):
        plan = FaultPlan(tmp_path, [
            {"match": "thresh[vis]", "action": "error", "times": -1},
        ])
        runner = ParallelRunner(scale=TINY_SCALE, jobs=1, keep_going=True)
        with plan:
            _h, rows, _raw = figures.figure2(runner, benchmarks=SUBSET)
        marked = [r for r in rows if r[2] == "FAILED(failed)"]
        assert len(marked) == 1 and marked[0][0] == "thresh"
        assert marked[0][3:] == ["-"] * 5
        clean = [r for r in rows if "FAILED" not in str(r[2])]
        assert len(clean) == len(rows) - 1  # the rest rendered normally

    def test_failed_baseline_marks_dependent_rows(self, tmp_path):
        """When the normalization baseline itself fails, its benchmark's
        other rows render FAILED(baseline) + absolute numbers only."""
        plan = FaultPlan(tmp_path, [
            {"match": "thresh[scalar]@in-order 1-way",
             "action": "error", "times": -1},
        ])
        runner = ParallelRunner(scale=TINY_SCALE, jobs=1, keep_going=True)
        with plan:
            _h, rows, _raw = figures.figure1(runner, benchmarks=SUBSET)
        thresh = [r for r in rows if r[0] == "thresh"]
        assert any(r[3] == "FAILED(failed)" for r in thresh)
        assert any(r[3] == "FAILED(baseline)" for r in thresh)
        # the un-faulted benchmark still has fully numeric rows
        addition = [r for r in rows if r[0] == "addition"]
        assert all("FAILED" not in str(r[3]) for r in addition)


# ---------------------------------------------------------------------------
# Manifest resilience + CLI round trips
# ---------------------------------------------------------------------------


class TestManifest:
    def test_torn_final_line_dropped_on_resume(self, tmp_path):
        from repro.experiments.faults import RunManifest

        point = _grid(("addition",), (Variant.SCALAR,))[0]
        manifest = RunManifest(tmp_path / "m.jsonl", cache_version="v")
        runner = ParallelRunner(scale=TINY_SCALE, jobs=1, manifest=manifest)
        [stats] = runner.run_points([point])
        manifest.close()

        raw = (tmp_path / "m.jsonl").read_bytes()
        # journal a torn append: half a second record
        (tmp_path / "m.jsonl").write_bytes(
            raw + raw.splitlines(keepends=True)[-1][:17]
        )
        resumed = RunManifest(
            tmp_path / "m.jsonl", resume=True, cache_version="v"
        )
        assert resumed.resumed
        restored = resumed.completed[point.content_key()]
        assert restored.to_dict() == stats.to_dict()
        resumed.close()

    def test_incompatible_header_starts_fresh(self, tmp_path):
        from repro.experiments.faults import RunManifest

        path = tmp_path / "m.jsonl"
        with RunManifest(path, cache_version="old") as manifest:
            manifest.record_ok("k", _stats_fixture(), label="x")
        fresh = RunManifest(path, resume=True, cache_version="new")
        assert not fresh.resumed and not fresh.completed
        fresh.close()


def _stats_fixture():
    runner = ParallelRunner(scale=TINY_SCALE, jobs=1)
    return runner.run_points(_grid(("addition",), (Variant.SCALAR,)))[0]


class TestCliFaults:
    ARGS = [
        "figure2", "--scale", "tiny", "--benchmarks", "addition", "thresh",
        "--no-cache", "--quiet",
    ]

    def test_fail_fast_exits_1_naming_point(self, tmp_path, capsys):
        plan = FaultPlan(tmp_path, [
            {"match": "thresh[vis]", "action": "error", "times": -1},
        ])
        with plan:
            code = main(self.ARGS + ["--out", str(tmp_path / "out")])
        assert code == 1
        err = capsys.readouterr().err
        assert "GRID FAILURE" in err and "thresh[vis]" in err

    def test_keep_going_exits_4_with_markers_in_csv(self, tmp_path, capsys):
        plan = FaultPlan(tmp_path, [
            {"match": "thresh[vis]", "action": "error", "times": -1},
        ])
        with plan:
            code = main(
                self.ARGS
                + ["--out", str(tmp_path / "out"), "--keep-going"]
            )
        assert code == EXIT_GRID_FAILURES == 4
        err = capsys.readouterr().err
        assert "FAILED(failed)" in err and "thresh[vis]" in err
        csv_text = (tmp_path / "out" / "figure2_tiny.csv").read_text()
        assert "FAILED(failed)" in csv_text

    def test_resume_skips_completed_points(self, tmp_path, capsys):
        out = str(tmp_path / "out")
        assert main(self.ARGS + ["--out", out]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--out", out, "--resume"]) == 0
        err = capsys.readouterr().err
        assert "resume: 4 point(s) restored" in err


@pytest.mark.slow
class TestKillResume:
    def test_sigkill_midway_then_resume_is_byte_identical(self, tmp_path):
        """The CI smoke scenario, end to end: SIGKILL the CLI partway
        through a grid, re-run with --resume, and the CSVs match a
        clean run byte for byte."""
        repo = Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        args = [
            sys.executable, "-m", "repro.experiments.cli",
            "figure2", "--scale", "tiny",
            "--benchmarks", "addition", "thresh",
            "--no-cache", "--jobs", "1",
        ]
        ref = tmp_path / "ref"
        subprocess.run(
            args + ["--out", str(ref)], env=env, cwd=repo,
            check=True, capture_output=True, timeout=600,
        )

        out = tmp_path / "out"
        proc = subprocess.Popen(
            args + ["--out", str(out)], env=env, cwd=repo,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
        )
        # kill after the first progress line: mid-grid by construction
        assert proc.stderr.readline()
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
        assert proc.returncode != 0

        resumed = subprocess.run(
            args + ["--out", str(out), "--resume"], env=env, cwd=repo,
            check=True, capture_output=True, text=True, timeout=600,
        )
        assert "resume:" in resumed.stderr
        assert (
            (out / "figure2_tiny.csv").read_bytes()
            == (ref / "figure2_tiny.csv").read_bytes()
        )
