"""RunCache / simulate_program glue tests."""

from repro.cpu.config import ProcessorConfig
from repro.experiments.runner import RunCache, simulate_program
from repro.workloads import TINY_SCALE, Variant
from repro.workloads.suite import get


def test_run_cache_reuses_builds():
    cache = RunCache(scale=TINY_SCALE)
    first = cache.built("addition", Variant.VIS)
    second = cache.built("addition", Variant.VIS)
    assert first is second
    other = cache.built("addition", Variant.SCALAR)
    assert other is not first


def test_run_cache_validates_once_then_runs_fast():
    cache = RunCache(scale=TINY_SCALE)
    config = ProcessorConfig.ooo_4way()
    mem = TINY_SCALE.memory_config()
    stats = cache.run("scaling", Variant.VIS, config, mem)
    assert cache._validated[("scaling", Variant.VIS)]
    again = cache.run("scaling", Variant.VIS, config, mem)
    assert again.cycles == stats.cycles


def test_simulate_program_resets_machine_between_runs():
    built = get("addition").build(Variant.SCALAR, TINY_SCALE)
    config = ProcessorConfig.inorder_1way()
    mem = TINY_SCALE.memory_config()
    stats1, machine = simulate_program(built.program, config, mem)
    stats2, _ = simulate_program(built.program, config, mem, machine=machine)
    assert stats1.cycles == stats2.cycles
    built.validate(machine)


def test_stats_carry_benchmark_and_config_names():
    cache = RunCache(scale=TINY_SCALE)
    config = ProcessorConfig.inorder_4way()
    stats = cache.run("thresh", Variant.SCALAR, config, TINY_SCALE.memory_config())
    assert "thresh" in stats.benchmark
    assert stats.config_name == "in-order 4-way"


def test_validation_can_be_disabled():
    cache = RunCache(scale=TINY_SCALE, validate=False)
    config = ProcessorConfig.ooo_4way()
    cache.run("addition", Variant.SCALAR, config, TINY_SCALE.memory_config())
    assert not cache._validated
