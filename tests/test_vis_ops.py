"""Property tests: VIS packed semantics against numpy reference math.

These are the contract that makes the benchmark validation meaningful:
every packed operation must equal the element-wise scalar formulation.
"""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given

from repro.isa import vis
from repro.isa.bits import MASK64, join16, s16, split8, split16

u64s = st.integers(min_value=0, max_value=MASK64)
lanes16 = st.lists(
    st.integers(min_value=-32768, max_value=32767), min_size=4, max_size=4
)


def as_lanes(value):
    return np.array([s16(v) for v in split16(value)], dtype=np.int64)


@given(u64s, u64s)
def test_fpadd16_is_lanewise_wraparound(a, b):
    got = as_lanes(vis.fpadd16(a, b))
    want = (as_lanes(a) + as_lanes(b)).astype(np.int16).astype(np.int64)
    assert np.array_equal(got, want)


@given(u64s, u64s)
def test_fpsub16_is_lanewise_wraparound(a, b):
    got = as_lanes(vis.fpsub16(a, b))
    want = (as_lanes(a) - as_lanes(b)).astype(np.int16).astype(np.int64)
    assert np.array_equal(got, want)


@given(u64s, u64s)
def test_fpadd32_wraparound(a, b):
    got = vis.fpadd32(a, b)
    for lane in range(2):
        x = (a >> (32 * lane)) & 0xFFFFFFFF
        y = (b >> (32 * lane)) & 0xFFFFFFFF
        assert (got >> (32 * lane)) & 0xFFFFFFFF == (x + y) & 0xFFFFFFFF


@given(lanes16, lanes16)
def test_emulated_16x16_multiply_identity(xs, ys):
    """fmul8sux16 + fmul8ulx16 + fpadd16 == (x*y) >> 8 per lane,
    exactly — the identity the DCT and dotprod kernels rely on."""
    a = join16([x & 0xFFFF for x in xs])
    b = join16([y & 0xFFFF for y in ys])
    got = vis.fpadd16(vis.fmul8sux16(a, b), vis.fmul8ulx16(a, b))
    want = join16([((x * y) >> 8) & 0xFFFF for x, y in zip(xs, ys)])
    assert got == want
    assert got == vis.mul16x16_scaled(a, b)


@given(
    st.lists(st.integers(0, 255), min_size=4, max_size=4),
    st.integers(min_value=-32768, max_value=32767),
)
def test_fmul8x16au_rounds_each_product(pixels, coeff):
    a = sum(p << (8 * i) for i, p in enumerate(pixels))
    b = (coeff & 0xFFFF) << 16
    got = as_lanes(vis.fmul8x16au(a, b))
    want = np.array(
        [np.int16((p * coeff + 0x80) >> 8) for p in pixels], dtype=np.int64
    )
    assert np.array_equal(got, want)


@given(lanes16, st.integers(0, 7))
def test_fpack16_saturates(xs, scale):
    a = join16([x & 0xFFFF for x in xs])
    got = vis.fpack16(a, scale)
    for i, x in enumerate(xs):
        want = max(0, min(255, (x << scale) >> 7))
        assert (got >> (8 * i)) & 0xFF == want


@given(u64s)
def test_fexpand_scales_by_16(a):
    got = split16(vis.fexpand(a))
    for i in range(4):
        assert got[i] == ((a >> (8 * i)) & 0xFF) << 4


@given(u64s, u64s, st.integers(0, 7))
def test_faligndata_extracts_window(a, b, align):
    combined = split8(a) + split8(b)
    got = split8(vis.faligndata(a, b, align))
    assert got == combined[align : align + 8]


@given(u64s, u64s)
def test_fpmerge_interleaves(a, b):
    got = split8(vis.fpmerge(a, b))
    a_bytes, b_bytes = split8(a)[:4], split8(b)[:4]
    want = [v for pair in zip(a_bytes, b_bytes) for v in pair]
    assert got == want


@given(u64s, u64s)
def test_fcmpgt16_mask(a, b):
    mask = vis.fcmpgt16(a, b)
    for i, (x, y) in enumerate(zip(split16(a), split16(b))):
        assert bool(mask & (1 << i)) == (s16(x) > s16(y))


@given(u64s, u64s)
def test_fcmple16_complements_gt(a, b):
    assert vis.fcmple16(a, b) == (~vis.fcmpgt16(a, b)) & 0xF


@given(u64s, u64s, st.integers(0, 1 << 40))
def test_pdist_accumulates_absolute_differences(a, b, acc):
    got = vis.pdist(a, b, acc)
    want = (acc + sum(abs(x - y) for x, y in zip(split8(a), split8(b)))) & MASK64
    assert got == want


def test_edge8_within_word():
    # start offset 5, end offset 6 -> bytes 5 and 6
    assert vis.edge8(0x1005, 0x1006) == 0b01100000
    # full word
    assert vis.edge8(0x1000, 0x100F) == 0xFF
    # end before start's word
    assert vis.edge8(0x1008, 0x1000) == 0


def test_edge16_rounds_to_granule():
    assert vis.edge16(0x1001, 0x1007) == 0b11111111
    assert vis.edge16(0x1002, 0x1005) == 0b00111100


@given(u64s, u64s, st.integers(0, 255))
def test_partial_store_merge(old, new, mask):
    got = split8(vis.partial_store_merge(old, new, mask))
    for k in range(8):
        want = split8(new)[k] if mask & (1 << k) else split8(old)[k]
        assert got[k] == want


@given(u64s, u64s)
def test_logicals(a, b):
    assert vis.fand(a, b) == a & b
    assert vis.for_(a, b) == a | b
    assert vis.fxor(a, b) == a ^ b
    assert vis.fandnot(a, b) == ~a & b & MASK64
    assert vis.fnot(a) == ~a & MASK64
