"""Golden audit-summary regression fixture.

Runs the full 12-benchmark grid (scalar + VIS on the 4-way OoO
processor, tiny scale) through :func:`audited_simulate` and pins the
complete per-run decomposition — cycles, instructions, the four stall
components, the final-cycle drain, and the trace event count — as a
committed CSV.  Unlike the figure goldens (which pin the *reported*
tables), this fixture pins the raw audited accounting, so it catches a
drifting decomposition even when the derived figures happen to agree.

Regenerate deliberately with::

    PYTHONPATH=src python -m pytest tests/test_golden_audit.py --regen-golden
"""

import pytest

from repro.cpu.config import ProcessorConfig
from repro.experiments.runner import audited_simulate
from repro.trace import AUDIT_SUMMARY_HEADERS, audit_summary_row
from repro.workloads.base import Variant
from repro.workloads.params import TINY_SCALE
from repro.workloads.suite import get, names

from tests.test_golden_figures import _read_golden, _golden_path, regen_golden

VARIANTS = (Variant.SCALAR, Variant.VIS)


def _audit_summary_table():
    """(headers, rows) over the full grid, enumeration-order stable."""
    cpu = ProcessorConfig.ooo_4way()
    mem = TINY_SCALE.memory_config()
    rows = []
    for name in names():
        for variant in VARIANTS:
            built = get(name).build(variant, TINY_SCALE)
            stats, report, _machine = audited_simulate(
                built.program, cpu, mem,
                benchmark=f"{name}[{variant.value}]",
            )
            assert report.ok, report.summary()
            rows.append([
                str(cell)
                for cell in audit_summary_row(stats, report, variant.value)
            ])
    return list(AUDIT_SUMMARY_HEADERS), rows


@pytest.mark.slow
def test_golden_audit_summary(request):
    headers, produced = _audit_summary_table()
    path = _golden_path("audit_summary")

    if request.config.getoption("--regen-golden"):
        regen_golden(request.config, path, headers, produced)

    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"pytest tests/test_golden_audit.py --regen-golden"
    )
    golden_headers, golden_rows = _read_golden(path)
    assert headers == golden_headers, "audit summary: header drift"
    assert len(produced) == len(golden_rows)
    for i, (got, want) in enumerate(zip(produced, golden_rows)):
        assert got == want, (
            f"audit summary row {i} drifted:\n  got  {got}\n  want {want}"
        )
