"""StaticProgramInfo: the metadata contract between machine and CPU."""

from repro.asm import ProgramBuilder
from repro.sim import (
    CAT_BRANCH,
    CAT_FU,
    CAT_MEMORY,
    CAT_VIS,
    FU_ADDR,
    FU_INT,
    FU_VADD,
    FU_VMUL,
    K_BRANCH,
    K_LOAD,
    K_PREFETCH,
    K_SIMPLE,
    K_STORE,
    K_UNCOND,
    StaticProgramInfo,
)


def build_sample():
    b = ProgramBuilder()
    b.buffer("buf", 64)
    r, r2 = b.iregs(2)
    f1, f2 = b.fregs(2)
    label = b.label()
    b.la(r, "buf")
    b.ldb(r2, r)                 # load
    b.add(r2, r2, 1)             # simple / int
    b.stb(r2, r)                 # store
    b.pf(r, 64)                  # prefetch
    b.ldf(f1, r)                 # load into media reg
    b.fpadd16(f2, f1, f1)        # VIS adder
    b.fmul8x16(f2, f1, f1)       # VIS multiplier
    b.beq(r2, 0, label)          # conditional branch
    b.bind(label)
    b.call(label)                # never returns here in test; static only
    return b.build()


def test_kinds_and_units():
    program = build_sample()
    info = StaticProgramInfo(program)
    ops = {instr.op: i for i, instr in enumerate(program.instructions)}
    assert info.kind[ops["ldb"]] == K_LOAD
    assert info.kind[ops["stb"]] == K_STORE
    assert info.kind[ops["pf"]] == K_PREFETCH
    assert info.kind[ops["beq"]] == K_BRANCH
    assert info.kind[ops["call"]] == K_UNCOND
    assert info.kind[ops["add"]] == K_SIMPLE
    assert info.fu[ops["add"]] == FU_INT
    assert info.fu[ops["ldb"]] == FU_ADDR
    assert info.fu[ops["fpadd16"]] == FU_VADD
    assert info.fu[ops["fmul8x16"]] == FU_VMUL
    assert info.is_call[ops["call"]]


def test_categories_match_figure2():
    program = build_sample()
    info = StaticProgramInfo(program)
    ops = {instr.op: i for i, instr in enumerate(program.instructions)}
    assert info.category[ops["add"]] == CAT_FU
    assert info.category[ops["ldb"]] == CAT_MEMORY
    assert info.category[ops["pf"]] == CAT_MEMORY
    assert info.category[ops["beq"]] == CAT_BRANCH
    assert info.category[ops["fpadd16"]] == CAT_VIS


def test_access_sizes():
    program = build_sample()
    info = StaticProgramInfo(program)
    ops = {instr.op: i for i, instr in enumerate(program.instructions)}
    assert info.size[ops["ldb"]] == 1
    assert info.size[ops["ldf"]] == 8
    assert info.size[ops["pf"]] == 64
    assert info.size[ops["add"]] == 0


def test_latencies_flattened():
    program = build_sample()
    info = StaticProgramInfo(program)
    ops = {instr.op: i for i, instr in enumerate(program.instructions)}
    assert info.latency[ops["fmul8x16"]] == 3
    assert info.latency[ops["fpadd16"]] == 1
