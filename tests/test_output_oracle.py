"""Architectural output oracle: the timing models cannot change results.

Every workload's final memory image is a pure function of the program
and its inputs — the pipeline model (in-order vs out-of-order), the
cache hierarchy, and the tracer only decide *when* things happen,
never *what* is computed.  For each workload, with and without VIS:

* the simulated machine's output validates against the workload's
  numpy reference implementation (``BuiltWorkload.validate``) when run
  through the full timing path, on **both** processor models;
* the sha256 digest of the complete final memory image is identical
  across the in-order model, the out-of-order model, and a plain
  functional (timing-free) run.

A divergence here means a timing model mutated architectural state —
the worst possible simulator bug, invisible to cycle accounting.
"""

import hashlib

import pytest

from repro.cpu.config import ProcessorConfig
from repro.experiments.runner import simulate_program
from repro.workloads.base import Variant
from repro.workloads.params import TINY_SCALE
from repro.workloads.suite import get, names

MODELS = {
    "inorder": ProcessorConfig.inorder_1way,
    "ooo": ProcessorConfig.ooo_4way,
}

#: the scalar/VIS pair (prefetch variants execute the same computation
#: with hint instructions interleaved; covered by the workload suite)
VARIANTS = (Variant.SCALAR, Variant.VIS)


def _digest(machine) -> str:
    return hashlib.sha256(bytes(machine.memory)).hexdigest()


@pytest.mark.parametrize("name", names())
def test_outputs_match_reference_and_agree_across_models(name):
    workload = get(name)
    mem = TINY_SCALE.memory_config()
    for variant in VARIANTS:
        if variant not in workload.supported_variants:
            continue
        built = workload.build(variant, TINY_SCALE)
        # oracle 1: the timing-free functional run (the reference for
        # "what the program computes", validated against numpy)
        functional = built.run_and_validate()
        expected = _digest(functional)
        # oracle 2: both timing models, full pipeline + memory system
        for model_name, make_config in MODELS.items():
            stats, machine = simulate_program(
                built.program, make_config(), mem,
                benchmark=f"{name}[{variant.value}]", lint=False,
            )
            built.validate(machine)  # numpy reference check
            assert _digest(machine) == expected, (
                f"{name}[{variant.value}] on {model_name}: final memory "
                f"image diverged from the functional run"
            )
            assert stats.instructions == functional.instruction_count, (
                f"{name}[{variant.value}] on {model_name}: retired "
                f"count != functionally executed count"
            )
