"""Unit + property tests for the fixed-width integer helpers."""

import hypothesis.strategies as st
from hypothesis import given

from repro.isa import bits

u64s = st.integers(min_value=0, max_value=bits.MASK64)
s64s = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


def test_masks():
    assert bits.MASK8 == 0xFF
    assert bits.MASK16 == 0xFFFF
    assert bits.MASK32 == 0xFFFFFFFF
    assert bits.MASK64 == (1 << 64) - 1


@given(s64s)
def test_s64_u64_roundtrip(value):
    assert bits.s64(bits.u64(value)) == value


def test_sign_extension_boundaries():
    assert bits.s8(0x7F) == 127
    assert bits.s8(0x80) == -128
    assert bits.s16(0x7FFF) == 32767
    assert bits.s16(0x8000) == -32768
    assert bits.s32(0x80000000) == -(1 << 31)
    assert bits.s64(1 << 63) == -(1 << 63)


@given(u64s)
def test_split_join16_roundtrip(value):
    assert bits.join16(bits.split16(value)) == value


@given(u64s)
def test_split_join32_roundtrip(value):
    assert bits.join32(bits.split32(value)) == value


@given(u64s)
def test_split_join8_roundtrip(value):
    assert bits.join8(bits.split8(value)) == value


@given(u64s)
def test_lane_zero_is_least_significant(value):
    assert bits.split16(value)[0] == value & 0xFFFF
    assert bits.split8(value)[0] == value & 0xFF


def test_clamp():
    assert bits.clamp(-5, 0, 255) == 0
    assert bits.clamp(300, 0, 255) == 255
    assert bits.clamp(128, 0, 255) == 128
