"""Serial/parallel equivalence of the experiment runner.

The tentpole guarantee: ``ParallelRunner(jobs=1)``, ``jobs=4`` (real
process fan-out) and the legacy in-process ``RunCache`` path all
produce *identical* stats, table rows and headers for the same grid,
and repeated runs are deterministic.
"""

import pytest

from repro.cpu.config import ProcessorConfig
from repro.experiments import figures
from repro.experiments.parallel import ParallelRunner, SimPoint
from repro.experiments.runner import RunCache
from repro.workloads.base import Variant
from repro.workloads.params import TINY_SCALE

SUBSET = ("addition", "thresh")
CONFIGS = (ProcessorConfig.inorder_1way(), ProcessorConfig.ooo_4way())


def _sample_grid():
    """A sampled sub-grid: 2 benchmarks x 2 variants x 2 configs."""
    mem = TINY_SCALE.memory_config()
    return [
        SimPoint(name, variant, config, mem, TINY_SCALE)
        for name in SUBSET
        for variant in (Variant.SCALAR, Variant.VIS)
        for config in CONFIGS
    ]


def _fingerprint(stats_list):
    return [s.to_dict() for s in stats_list]


class TestEquivalence:
    @pytest.fixture(scope="class")
    def serial_stats(self):
        """Legacy serial path: the in-process RunCache."""
        return RunCache(scale=TINY_SCALE).run_points(_sample_grid())

    def test_jobs1_matches_legacy_serial(self, serial_stats):
        runner = ParallelRunner(scale=TINY_SCALE, jobs=1)
        got = runner.run_points(_sample_grid())
        assert _fingerprint(got) == _fingerprint(serial_stats)

    def test_jobs4_matches_legacy_serial(self, serial_stats):
        runner = ParallelRunner(scale=TINY_SCALE, jobs=4)
        got = runner.run_points(_sample_grid())
        assert _fingerprint(got) == _fingerprint(serial_stats)

    def test_repeated_runs_deterministic(self):
        runner = ParallelRunner(scale=TINY_SCALE, jobs=4)
        first = runner.run_points(_sample_grid())
        second = runner.run_points(_sample_grid())
        assert _fingerprint(first) == _fingerprint(second)

    def test_results_align_with_enumeration_order(self, serial_stats):
        """Merging is positional: stats[i] answers points[i]."""
        points = _sample_grid()
        for point, stats in zip(points, serial_stats):
            assert stats.benchmark == f"{point.benchmark}[{point.variant.value}]"
            assert stats.config_name == point.cpu.name


class TestDriverEquivalence:
    """Whole-driver check: figure tables are byte-identical across
    runner implementations."""

    def test_figure1_rows_identical(self):
        serial = figures.figure1(RunCache(scale=TINY_SCALE), benchmarks=SUBSET)
        parallel = figures.figure1(
            ParallelRunner(scale=TINY_SCALE, jobs=4), benchmarks=SUBSET
        )
        assert serial[0] == parallel[0]  # headers
        assert serial[1] == parallel[1]  # rows

    def test_figure1_baseline_is_explicit(self):
        """The normalization baseline is the 1-way in-order scalar run
        by construction, not an artifact of completion order: the
        baseline row reads exactly 100.0."""
        _h, rows, raw = figures.figure1(
            ParallelRunner(scale=TINY_SCALE, jobs=1), benchmarks=("thresh",)
        )
        baseline_rows = [
            r for r in rows if r[1] == "base" and r[2] == "in-order 1-way"
        ]
        assert baseline_rows and all(r[3] == "100.0" for r in baseline_rows)
        base = raw[("thresh", Variant.SCALAR, "in-order 1-way")]
        for (name, variant, config_name), stats in raw.items():
            expected = f"{100 * stats.cycles / base.cycles:.1f}"
            row = next(
                r for r in rows
                if r[0] == name and r[2] == config_name
                and r[1] == ("VIS" if variant is Variant.VIS else "base")
            )
            assert row[3] == expected


class TestSimPoint:
    def test_points_are_picklable(self):
        import pickle

        point = _sample_grid()[0]
        assert pickle.loads(pickle.dumps(point)) == point

    def test_duplicate_points_simulated_once(self):
        runner = ParallelRunner(scale=TINY_SCALE, jobs=1)
        point = _sample_grid()[0]
        results = runner.run_points([point, point, point])
        assert runner.simulated == 1
        assert results[0] == results[1] == results[2]

    def test_label(self):
        point = _sample_grid()[0]
        assert point.label() == "addition[scalar]@in-order 1-way"
