"""Golden-figure regression suite.

Regenerates Figure 1, Figure 2, Figure 3 and both cache sweeps over
the **full** benchmark grid at the tiny scale and compares every table
row-for-row against the committed fixtures in ``tests/golden/``.  The
timing models are deterministic, so any diff here means a refactor
changed the paper's reproduced numbers — deliberately or not.

To bless an intentional change::

    PYTHONPATH=src python -m pytest tests/test_golden_figures.py --regen-golden
    git diff tests/golden/        # inspect what moved, then commit

The whole module shares one disk-cached runner, so points shared
between figures (e.g. every figure2 point is also a figure1 point) are
simulated exactly once.
"""

import csv
from pathlib import Path

import pytest

from repro.experiments import figures
from repro.experiments.parallel import DiskCache, ParallelRunner
from repro.experiments.report import write_csv
from repro.workloads.params import TINY_SCALE

GOLDEN_DIR = Path(__file__).parent / "golden"

#: name -> driver over the full default benchmark set.
GOLDEN_FIGURES = {
    "figure1": lambda runner: figures.figure1(runner),
    "figure2": lambda runner: figures.figure2(runner),
    "figure3": lambda runner: figures.figure3(runner),
    "l2_sweep": lambda runner: figures.cache_sweep(runner, "l2"),
    "l1_sweep": lambda runner: figures.cache_sweep(runner, "l1"),
}

#: figure1 first so the shared cache pre-pays figure2's entire grid.
ORDER = ("figure1", "figure2", "figure3", "l2_sweep", "l1_sweep")


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    cache = DiskCache(tmp_path_factory.mktemp("simcache"))
    return ParallelRunner(scale=TINY_SCALE, jobs=1, cache=cache)


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}_tiny.csv"


def _read_golden(path: Path):
    with open(path, newline="") as f:
        reader = csv.reader(f)
        rows = list(reader)
    return rows[0], rows[1:]


def regen_golden(config, path: Path, headers, rows) -> None:
    """Rewrite one fixture, record whether it actually changed (for
    the end-of-run summary printed by conftest), and skip the test.

    ``--regen-golden`` is refused under xdist by ``pytest_configure``
    in ``conftest.py`` — by the time this runs we are guaranteed to be
    the only writer.
    """
    old = path.read_bytes() if path.exists() else None
    write_csv(path, headers, rows)
    new = path.read_bytes()
    if old is None:
        changed, reason = True, "new fixture"
    elif old != new:
        changed, reason = True, "contents differ"
    else:
        changed, reason = False, ""
    log = getattr(config, "_regenerated_goldens", None)
    if log is not None:
        log.append((str(path), changed, reason))
    pytest.skip(
        f"regenerated {path.name}"
        + (f" ({reason})" if changed else " (unchanged)")
    )


@pytest.mark.slow
@pytest.mark.parametrize("name", ORDER)
def test_golden_figure(name, runner, request):
    headers, rows, _raw = GOLDEN_FIGURES[name](runner)
    produced = [[str(cell) for cell in row] for row in rows]
    path = _golden_path(name)

    if request.config.getoption("--regen-golden"):
        regen_golden(request.config, path, headers, produced)

    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"pytest tests/test_golden_figures.py --regen-golden"
    )
    golden_headers, golden_rows = _read_golden(path)
    assert list(headers) == golden_headers, f"{name}: header drift"
    assert len(produced) == len(golden_rows), (
        f"{name}: row count {len(produced)} != golden {len(golden_rows)}"
    )
    for i, (got, want) in enumerate(zip(produced, golden_rows)):
        assert got == want, (
            f"{name} row {i} drifted:\n  got  {got}\n  want {want}"
        )


class TestRegenGoldenGuard:
    """--regen-golden must refuse to run under xdist (racing workers
    would clobber the fixtures and hide the change report)."""

    @staticmethod
    def _config(numprocesses=None):
        class Option:
            pass

        class Config:
            option = Option()

            @staticmethod
            def getoption(name):
                return name == "--regen-golden"

        Config.option.numprocesses = numprocesses
        return Config()

    def test_refuses_with_numprocesses(self, monkeypatch):
        from tests.conftest import pytest_configure

        monkeypatch.delenv("PYTEST_XDIST_WORKER", raising=False)
        with pytest.raises(pytest.UsageError, match="xdist"):
            pytest_configure(self._config(numprocesses=4))

    def test_refuses_inside_worker(self, monkeypatch):
        from tests.conftest import pytest_configure

        monkeypatch.setenv("PYTEST_XDIST_WORKER", "gw1")
        with pytest.raises(pytest.UsageError, match="xdist"):
            pytest_configure(self._config())

    def test_allows_serial_run(self, monkeypatch):
        from tests.conftest import pytest_configure

        monkeypatch.delenv("PYTEST_XDIST_WORKER", raising=False)
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        config = self._config()
        pytest_configure(config)  # no raise
        assert config._regenerated_goldens == []

    def test_refuses_scalar_engine_override(self, monkeypatch):
        """Goldens are engine-independent by construction; regenerating
        them under the scalar reference engine could bake in a vector
        divergence, so the override is refused."""
        from tests.conftest import pytest_configure

        monkeypatch.delenv("PYTEST_XDIST_WORKER", raising=False)
        monkeypatch.setenv("REPRO_ENGINE", "scalar")
        with pytest.raises(pytest.UsageError, match="scalar"):
            pytest_configure(self._config())

    def test_allows_explicit_vector_engine(self, monkeypatch):
        from tests.conftest import pytest_configure

        monkeypatch.delenv("PYTEST_XDIST_WORKER", raising=False)
        monkeypatch.setenv("REPRO_ENGINE", "vector")
        config = self._config()
        pytest_configure(config)  # no raise
        assert config._regenerated_goldens == []


@pytest.mark.slow
def test_all_goldens_committed():
    """Every figure in the suite has a committed fixture (catches a
    --regen-golden run that was never followed by a commit)."""
    missing = [n for n in GOLDEN_FIGURES if not _golden_path(n).exists()]
    assert not missing, f"missing golden fixtures: {missing}"
