"""Shared pytest configuration for the unit/integration suite."""


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.csv from the current timing models "
             "instead of comparing against them (then commit the diff)",
    )
