"""Shared pytest configuration for the unit/integration suite."""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.csv from the current timing models "
             "instead of comparing against them (then commit the diff)",
    )


def pytest_configure(config):
    """``--regen-golden`` must run serially.

    Under pytest-xdist every worker would regenerate (and skip) the
    same fixture files concurrently, racing on the writes and hiding
    the per-fixture change report — refuse up front instead of
    corrupting the goldens.
    """
    if not config.getoption("--regen-golden"):
        return
    in_xdist_worker = (
        hasattr(config, "workerinput")
        or os.environ.get("PYTEST_XDIST_WORKER")
    )
    numprocesses = getattr(config.option, "numprocesses", None)
    if in_xdist_worker or numprocesses not in (None, 0):
        raise pytest.UsageError(
            "--regen-golden refuses to run under xdist (-n/--numprocesses): "
            "parallel workers would race on the fixture files. "
            "Re-run serially, e.g. "
            "`pytest tests/test_golden_figures.py --regen-golden`."
        )

    from repro.sim.engine import resolve_engine

    if resolve_engine() == "scalar":
        raise pytest.UsageError(
            "--regen-golden refuses to run with the scalar engine "
            "selected (REPRO_ENGINE=scalar): goldens are engine-"
            "independent by construction, and regenerating them under "
            "the reference engine would let a vector-engine divergence "
            "slip into the fixtures unnoticed. Unset REPRO_ENGINE and "
            "re-run; the differential suite is the place where the "
            "engines are compared."
        )
    config._regenerated_goldens = []


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    log = getattr(config, "_regenerated_goldens", None)
    if not log:
        return
    tr = terminalreporter
    changed = [entry for entry in log if entry[1]]
    tr.section("regenerated golden fixtures")
    for path, was_changed, reason in log:
        tr.write_line(
            f"  {'CHANGED  ' if was_changed else 'unchanged'} {path}"
            + (f" ({reason})" if reason else "")
        )
    if changed:
        tr.write_line(
            f"{len(changed)} fixture(s) changed — inspect with "
            f"`git diff tests/golden/` and commit deliberately."
        )
    else:
        tr.write_line("all fixtures byte-identical to the committed versions.")
