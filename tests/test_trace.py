"""Unit tests for the repro.trace subsystem: events, sinks, the
streaming aggregator, the tracer's replica retirement convention, the
audit cross-check, and the offline JSONL report."""

import pytest

from repro.cpu.stats import (
    ExecutionStats,
    RetireUnit,
    SC_BRANCH,
    SC_FU,
    SC_L1HIT,
    SC_L1MISS,
)
from repro.trace import (
    AuditError,
    EV_FETCH,
    EV_ISSUE,
    EV_MEM,
    EV_RETIRE,
    EV_STALL_BEGIN,
    EV_STALL_END,
    JsonlSink,
    NullSink,
    RingBufferSink,
    StreamingAggregator,
    TraceEvent,
    Tracer,
    audit_run,
    audit_summary_row,
    AUDIT_SUMMARY_HEADERS,
    read_jsonl,
)
from repro.trace.report import analyze, render_report, timeline_rows, top_stall_sites


class FakeInfo:
    """Minimal stand-in for StaticProgramInfo: only .category is read
    on the tracer hot path."""

    def __init__(self, n=64, category=None):
        self.category = category or [0] * n
        self.op_name = ["op"] * n


def retire_ev(cycle, seq=0, sidx=0, cause=SC_FU, category=0):
    return TraceEvent(EV_RETIRE, cycle, seq, sidx, cause, category)


class TestTraceEvent:
    def test_kind_names(self):
        assert TraceEvent(EV_FETCH, 0, 0, 0, 0, 0).kind_name == "fetch"
        assert TraceEvent(EV_MEM, 0, 0, 0, 0, 0).kind_name == "mem"

    def test_describe_instruction_event(self):
        text = TraceEvent(EV_STALL_END, 17, 3, 5, SC_L1MISS, 2.5).describe()
        assert "stall-end" in text and "#3" in text and "L1 miss" in text

    def test_describe_mem_event(self):
        text = TraceEvent(EV_MEM, 9, 1, 0x40, 0, 21).describe()
        assert "mem" in text and "0x40" in text and "L2" in text

    def test_events_are_plain_tuples(self):
        ev = TraceEvent(EV_ISSUE, 1, 2, 3, 4, 5)
        assert list(ev) == [EV_ISSUE, 1, 2, 3, 4, 5]
        assert TraceEvent(*list(ev)) == ev


class TestSinks:
    def test_null_sink_swallows(self):
        sink = NullSink()
        sink.emit(retire_ev(0))
        sink.close()  # no-op, no error

    def test_ring_buffer_bounds_and_counts(self):
        ring = RingBufferSink(capacity=4)
        for i in range(10):
            ring.emit(retire_ev(i, seq=i))
        ring.emit(TraceEvent(EV_MEM, 10, 0, 0, 0, 11))
        assert ring.total == 11
        assert ring.counts[EV_RETIRE] == 10
        assert ring.counts[EV_MEM] == 1
        assert len(ring.events) == 4  # only the tail is kept
        assert ring.events[-1].kind == EV_MEM
        assert [e.seq for e in ring.of_kind(EV_RETIRE)] == [7, 8, 9]

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, header={"benchmark": "bm", "width": 4})
        evs = [
            TraceEvent(EV_FETCH, 0, 0, 7, 0, 0),
            TraceEvent(EV_STALL_END, 5, 0, 7, SC_L1HIT, 1.75),
            retire_ev(5, sidx=7),
        ]
        for ev in evs:
            sink.emit(ev)
        sink.close()
        assert sink.events_written == 3

        header, events = read_jsonl(path)
        assert header["type"] == "header"
        assert header["benchmark"] == "bm"
        got = list(events)
        assert got == evs
        assert got[1].value == 1.75  # float gap survives the roundtrip

    def test_jsonl_truncated_tail_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, header={})
        sink.emit(retire_ev(3))
        sink.close()
        with open(path, "a") as f:
            f.write('[4, 9, 1, 0, 0')  # killed mid-write
        _header, events = read_jsonl(path)
        assert len(list(events)) == 1

    def test_jsonl_bad_header_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        with pytest.raises(ValueError, match="bad header"):
            read_jsonl(bad)
        nothdr = tmp_path / "nothdr.jsonl"
        nothdr.write_text('[4,0,0,0,0,0]\n')
        with pytest.raises(ValueError, match="missing trace header"):
            read_jsonl(nothdr)


class TestStreamingAggregator:
    def test_empty_run(self):
        agg = StreamingAggregator(width=4)
        assert agg.cycles == 0
        assert agg.busy == 0.0
        assert agg.drain == 0.0

    def test_hand_built_partition(self):
        """4 retires over 3 cycles with one charged stall: busy + stall
        + drain must equal the cycle count exactly."""
        agg = StreamingAggregator(width=2)
        agg.emit(retire_ev(0, seq=0, category=0))
        agg.emit(retire_ev(0, seq=1, category=2))
        agg.emit(TraceEvent(EV_STALL_END, 2, 2, 0, SC_L1MISS, 1.5))
        agg.emit(retire_ev(2, seq=2, category=2))
        agg.emit(retire_ev(2, seq=3, category=1))
        assert agg.retired == 4
        assert agg.cycles == 3
        assert agg.busy == 2.0
        assert agg.stalls[SC_L1MISS] == 1.5
        assert agg.drain == 3 - 2.0 - 1.5
        assert agg.category_dict() == {
            "FU": 1, "Branch": 1, "Memory": 2, "VIS": 0,
        }
        summary = agg.summary()
        assert summary["retired"] == 4
        assert summary["events_seen"] == 5

    def test_mem_events_counted_by_level(self):
        agg = StreamingAggregator(width=1)
        agg.emit(TraceEvent(EV_MEM, 0, 0, 0x10, 0, 2))
        agg.emit(TraceEvent(EV_MEM, 1, 2, 0x20, 1, 40))
        assert agg.mem_accesses == 2
        assert agg.mem_by_level == {0: 1, 2: 1}


class TestTracerReplica:
    """The tracer's private retirement replica must agree with
    RetireUnit on every schedule."""

    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_gap_charging_matches_retire_unit(self, width):
        requests = [0, 0, 0, 3, 3, 4, 9, 9, 9, 9, 9, 12, 30]
        unit = RetireUnit(width)
        tracer = Tracer(FakeInfo(), width)
        ring = RingBufferSink(capacity=1024)
        tracer.sinks.insert(0, ring)
        for req in requests:
            unit.retire(req, SC_FU)
            tracer.instr(0, 0, 0, req, req, SC_FU)
        agg = tracer.aggregator
        assert agg.retired == len(requests) == tracer.retired
        assert agg.cycles == unit.total_cycles
        assert agg.busy == unit.busy_cycles
        assert agg.stalls == unit.stalls
        # every charged gap appears as a STALL_BEGIN/STALL_END pair
        begins = ring.counts.get(EV_STALL_BEGIN, 0)
        ends = ring.counts.get(EV_STALL_END, 0)
        assert begins == ends
        assert sum(e.value for e in ring.of_kind(EV_STALL_END)) == sum(unit.stalls)

    def test_functional_chunks_accumulate(self):
        tracer = Tracer(FakeInfo(), 4)
        tracer.on_functional_chunk(100)
        tracer.on_functional_chunk(42)
        assert tracer.functional_instructions == 142

    def test_context_manager_closes_sinks(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl", header={})
        with Tracer(FakeInfo(), 2, sinks=[sink]) as tracer:
            tracer.instr(0, 0, 0, 1, 1, SC_BRANCH)
        assert sink._file.closed


class TestAudit:
    def _run_tracer(self, requests, width=2):
        tracer = Tracer(FakeInfo(), width)
        for req in requests:
            tracer.instr(0, 0, 0, req, req, SC_FU)
        tracer.on_functional_chunk(len(requests))
        return tracer

    def _stats_matching(self, tracer):
        agg = tracer.aggregator
        return ExecutionStats(
            benchmark="bm", config_name="cfg",
            instructions=agg.retired, cycles=agg.cycles, busy=agg.busy,
            fu_stall=agg.stalls[SC_FU], branch_stall=agg.stalls[SC_BRANCH],
            l1_hit_stall=agg.stalls[SC_L1HIT],
            l1_miss_stall=agg.stalls[SC_L1MISS],
            category_counts=agg.category_dict(),
        )

    def test_clean_run_passes(self):
        tracer = self._run_tracer([0, 1, 1, 5, 5, 6])
        report = audit_run(self._stats_matching(tracer), tracer)
        assert report.ok
        assert report.raise_if_failed() is report
        assert "ok" in report.summary()

    def test_dropped_cycle_detected(self):
        tracer = self._run_tracer([0, 1, 1, 5, 5, 6])
        stats = self._stats_matching(tracer)
        stats.cycles += 1  # model counter drifts by one cycle
        report = audit_run(stats, tracer)
        assert not report.ok
        whats = {d.what for d in report.divergences}
        assert "total cycles" in whats
        with pytest.raises(AuditError, match="total cycles"):
            report.raise_if_failed()

    def test_double_counted_stall_detected(self):
        tracer = self._run_tracer([0, 4, 8])
        stats = self._stats_matching(tracer)
        stats.fu_stall *= 2
        report = audit_run(stats, tracer)
        assert any(d.what == "FU stall" for d in report.divergences)
        # the doubled stall also breaks cycle conservation
        assert any("drain" in d.what for d in report.divergences)

    def test_mislabeled_category_detected(self):
        tracer = self._run_tracer([0, 1, 2])
        stats = self._stats_matching(tracer)
        stats.category_counts["VIS"] = stats.category_counts.pop("FU")
        report = audit_run(stats, tracer)
        whats = {d.what for d in report.divergences}
        assert "category[FU]" in whats and "category[VIS]" in whats

    def test_functional_mismatch_detected(self):
        tracer = self._run_tracer([0, 1, 2])
        tracer.on_functional_chunk(7)  # machine claims extra work
        report = audit_run(self._stats_matching(tracer), tracer)
        assert any(d.what == "functional == retired"
                   for d in report.divergences)

    def test_requires_aggregator(self):
        tracer = Tracer(FakeInfo(), 2, aggregate=False)
        with pytest.raises(ValueError, match="aggregate=True"):
            audit_run(ExecutionStats(), tracer)

    def test_summary_row_matches_headers(self):
        tracer = self._run_tracer([0, 3, 3])
        stats = self._stats_matching(tracer)
        report = audit_run(stats, tracer)
        row = audit_summary_row(stats, report, "vis")
        assert len(row) == len(AUDIT_SUMMARY_HEADERS)
        assert row[0] == "bm" and row[1] == "vis" and row[2] == "cfg"


class TestReport:
    def _write_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, header={
            "benchmark": "bm", "config": "cfg", "width": 2,
            "ops": ["add", "ldw", "blt"],
        })
        evs = [
            TraceEvent(EV_FETCH, 0, 0, 0, 0, 0),
            TraceEvent(EV_ISSUE, 1, 0, 0, SC_FU, 2),
            retire_ev(2, seq=0, sidx=0),
            TraceEvent(EV_FETCH, 0, 1, 1, 2, 0),
            TraceEvent(EV_ISSUE, 1, 1, 1, SC_L1MISS, 40),
            TraceEvent(EV_STALL_BEGIN, 2, 1, 1, SC_L1MISS, 0),
            TraceEvent(EV_STALL_END, 40, 1, 1, SC_L1MISS, 37.5),
            retire_ev(40, seq=1, sidx=1, cause=SC_L1MISS),
            TraceEvent(EV_MEM, 1, 2, 0x80, 0, 40),
        ]
        for ev in evs:
            sink.emit(ev)
        sink.close()
        return path

    def test_analyze_totals(self, tmp_path):
        header, events = read_jsonl(self._write_trace(tmp_path))
        analysis = analyze(header, events)
        assert analysis["retired"] == 2
        assert analysis["cycles"] == 41
        assert analysis["total_stall"][SC_L1MISS] == 37.5
        assert analysis["mem_by_level"] == {2: 1}
        assert analysis["mem_by_kind"] == {0: 1}

    def test_top_stall_sites_ranks_by_stall(self, tmp_path):
        header, events = read_jsonl(self._write_trace(tmp_path))
        analysis = analyze(header, events)
        headers, rows = top_stall_sites(analysis, top=5)
        assert rows[0][0] == "i1" and rows[0][1] == "ldw"
        assert rows[0][3] == "37.5"
        # site 0 charged nothing — filtered out
        assert all(r[0] != "i0" for r in rows)

    def test_timeline_resolves_ops(self, tmp_path):
        header, events = read_jsonl(self._write_trace(tmp_path))
        analysis = analyze(header, events)
        _headers, rows = timeline_rows(analysis, limit=10)
        assert [r[1] for r in rows] == ["add", "ldw"]
        assert "L1 miss" in rows[1][6]

    def test_render_report_end_to_end(self, tmp_path):
        text = render_report(self._write_trace(tmp_path), top=3, timeline=8)
        assert "trace report — bm on cfg" in text
        assert "instructions retired : 2" in text
        assert "pipeline timeline" in text
        assert "stall sites" in text

    def test_render_report_no_stalls(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        sink = JsonlSink(path, header={"benchmark": "bm", "config": "c"})
        sink.emit(retire_ev(0))
        sink.close()
        assert "fully busy pipeline" in render_report(path)
