"""Property-based (hypothesis) invariant tests for the audit layer.

For *randomized* tiny programs — random op mixes (ALU / loads /
stores / VIS / forward branches), random loop trip counts, random
data — the Section 2.3.4 accounting must always be a complete
partition:

* cycle conservation: ``busy + FU + branch + L1-hit + L1-miss +
  drain == total cycles`` with the final-cycle drain in ``[0, 1)``;
* instruction conservation: the Figure 2 categories sum to the
  retired count, which equals the functionally executed count;
* the event-stream recomputation (:mod:`repro.trace`) agrees with the
  model counters *exactly*, on both processor models, with and
  without VIS ops in the mix.

These are the invariants every figure in the paper rests on; hypothesis
hunts for the program shape that breaks them.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.asm import ProgramBuilder
from repro.cpu.config import ProcessorConfig
from repro.cpu.stats import NUM_STALL_CLASSES
from repro.mem import MemoryConfig
from repro.sim.static_info import CATEGORY_NAMES
from repro.trace import EV_RETIRE, RingBufferSink, Tracer, audit_run
from repro.experiments.runner import audited_simulate, simulate_program
from repro.sim.static_info import StaticProgramInfo

# -- random-program generator -----------------------------------------------

BUF = 256        #: data buffer size (bytes)
STRIDE = 8       #: pointer advance per loop iteration
MAX_OFF = 7      #: max load/store offset inside the stride window

ALU_OPS = ("add", "sub", "mul", "and_", "or_", "xor", "sll", "srl")
VIS_OPS = ("fpadd16", "fpsub32", "fand", "fxor", "fmul8x16", "pdist")

#: one straight-line body element
_op = st.one_of(
    st.tuples(st.just("alu"), st.sampled_from(ALU_OPS), st.integers(1, 63)),
    st.tuples(st.just("load"), st.sampled_from(("ldb", "ldw", "ldx")),
              st.integers(0, MAX_OFF)),
    st.tuples(st.just("store"), st.sampled_from(("stb", "stw")),
              st.integers(0, MAX_OFF)),
    st.tuples(st.just("vis"), st.sampled_from(VIS_OPS), st.integers(0, MAX_OFF)),
    st.tuples(st.just("branch"), st.integers(0, 255), st.booleans()),
)

program_shapes = st.tuples(
    st.lists(_op, min_size=1, max_size=12),   # loop body
    st.integers(1, (BUF - MAX_OFF - 8) // STRIDE),  # trip count
    st.integers(0, 2**31),                    # data seed
)


def build_random_program(body, iters, seed):
    """Deterministically materialize one random shape as a Program."""
    rng = np.random.default_rng(seed)
    data = bytes(rng.integers(0, 256, BUF, dtype=np.uint8))
    b = ProgramBuilder("randprog")
    b.buffer("src", BUF, data=data)
    acc, p, t = b.iregs(3)
    fa, fb = b.fregs(2)
    b.la(p, "src")
    b.li(acc, 0)
    b.ldf(fa, p)        # seed the FP/VIS registers
    b.ldf(fb, p)
    with b.loop(0, iters):
        for spec in body:
            kind = spec[0]
            if kind == "alu":
                getattr(b, spec[1])(acc, acc, spec[2])
            elif kind == "load":
                getattr(b, spec[1])(t, p, spec[2])
                b.add(acc, acc, t)
            elif kind == "store":
                getattr(b, spec[1])(acc, p, spec[2])
            elif kind == "vis":
                op, off = spec[1], spec[2]
                if op == "pdist":
                    b.pdist(fa, fa, fb)
                else:
                    getattr(b, op)(fa, fa, fb)
            else:  # forward branch over one instruction
                _, threshold, hint = spec
                skip = b.label()
                b.blt(acc, threshold, skip, hint=hint)
                b.add(acc, acc, 1)
                b.bind(skip)
        b.add(p, p, STRIDE)
    return b.build()


CONFIGS = (ProcessorConfig.inorder_1way, ProcessorConfig.ooo_4way)

#: tiny memory so random programs actually produce L1/L2 misses
def _mem():
    return MemoryConfig().scaled(64)


class TestRandomProgramConservation:
    @given(program_shapes, st.sampled_from(CONFIGS))
    @settings(max_examples=40, deadline=None)
    def test_audit_passes_and_time_partitions(self, shape, make_config):
        """audited_simulate finds zero divergences on any random
        program, and the stall components + drain partition the cycle
        count exactly, on both processor models."""
        program = build_random_program(*shape)
        stats, report, _m = audited_simulate(
            program, make_config(), _mem(), benchmark="randprog"
        )
        assert report.ok, report.summary()
        drain = stats.cycles - (
            stats.busy + stats.fu_stall + stats.branch_stall
            + stats.l1_hit_stall + stats.l1_miss_stall
        )
        assert 0.0 <= drain < 1.0
        assert drain == report.drain

    @given(program_shapes, st.sampled_from(CONFIGS))
    @settings(max_examples=40, deadline=None)
    def test_categories_partition_retired_count(self, shape, make_config):
        """Figure 2 categories sum to the retired count, which equals
        the functional machine's executed count; VIS ops land in the
        VIS category iff the program contains any."""
        program = build_random_program(*shape)
        stats, report, _m = audited_simulate(
            program, make_config(), _mem(), benchmark="randprog"
        )
        assert sum(stats.category_counts.values()) == stats.instructions
        assert report.functional_instructions == stats.instructions
        has_vis = any(spec[0] == "vis" for spec in shape[0])
        if has_vis:
            assert stats.category_counts.get("VIS", 0) > 0

    @given(program_shapes)
    @settings(max_examples=25, deadline=None)
    def test_event_stream_mirrors_stats(self, shape):
        """A ring-buffer sink sees exactly one RETIRE per retired
        instruction and the STALL_END gaps sum to the model's stalls."""
        program = build_random_program(*shape)
        cpu = ProcessorConfig.ooo_4way()
        ring = RingBufferSink(capacity=16)
        tracer = Tracer(
            StaticProgramInfo(program), cpu.issue_width, sinks=[ring]
        )
        stats, _m = simulate_program(
            program, cpu, _mem(), benchmark="randprog", tracer=tracer
        )
        assert ring.counts.get(EV_RETIRE, 0) == stats.instructions
        # ring keeps only the tail, never more than capacity
        assert len(ring.events) <= ring.capacity
        agg = tracer.aggregator
        model_stalls = [
            stats.fu_stall, stats.branch_stall,
            stats.l1_hit_stall, stats.l1_miss_stall,
        ]
        assert len(agg.stalls) == NUM_STALL_CLASSES
        assert agg.stalls == model_stalls
        report = audit_run(stats, tracer)
        assert report.ok, report.summary()

    @given(program_shapes, st.sampled_from(CONFIGS))
    @settings(max_examples=15, deadline=None)
    def test_tracing_never_changes_the_numbers(self, shape, make_config):
        """Attaching the tracer is observationally pure: every
        ExecutionStats field is identical with and without it."""
        program = build_random_program(*shape)
        plain, _ = simulate_program(
            program, make_config(), _mem(), benchmark="randprog"
        )
        traced, _rep, _m = audited_simulate(
            program, make_config(), _mem(), benchmark="randprog"
        )
        assert plain.to_dict() == traced.to_dict()


class TestCategoryNamesStable:
    def test_category_names_cover_figure2(self):
        assert CATEGORY_NAMES == ("FU", "Branch", "Memory", "VIS")
