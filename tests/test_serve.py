"""Simulation service: protocol, server semantics, coalescing.

Covers the serving layer end to end *in process* (server and clients
share one event loop; worker processes are real spawn-started
children):

* wire protocol round-trips and validation errors;
* cold / warm resolution sources and byte-identical results versus a
  serial ``_simulate_point`` reference (the exact function the batch
  CLI runs per point);
* the coalescing determinism guarantee: N concurrent identical grid
  requests from separate connections → exactly one underlying
  simulation per unique point, every reply bit-equal;
* admission control (``busy`` rejects enqueue *nothing*), priority
  lanes, cached-hot figure requests bypassing the miss queue,
  per-point failure streaming, and graceful shutdown.

The thousand-request sweep lives in ``test_serve_load.py``; chaos
(kills) in ``test_serve_chaos.py``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.experiments.parallel import DiskCache, _simulate_point
from repro.serve import protocol
from repro.serve.client import ServeBusy, ServeClient, ServeConnectionError
from repro.serve.journal import (
    ServeJournal,
    journal_path,
    load_journal_records,
)
from repro.serve.protocol import (
    ProtocolError,
    decode,
    encode,
    point_from_wire,
    point_to_wire,
    validate_lane,
)
from repro.serve.server import BatchServer, ServeConfig
from tests.chaos import FaultPlan

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

ADDITION = {"benchmark": "addition", "variant": "scalar", "scale": "tiny"}
ADDITION_VIS = {"benchmark": "addition", "variant": "vis", "scale": "tiny"}
THRESH = {"benchmark": "thresh", "variant": "scalar", "scale": "tiny"}


def serial_reference(spec) -> dict:
    """What the batch CLI would compute for ``spec``: the same worker
    entry point, run serially in this process, JSON-round-tripped the
    way the wire does."""
    stats, _elapsed, _resumed = _simulate_point(
        point_from_wire(spec), True
    )
    return json.loads(json.dumps(stats.to_dict(), sort_keys=True))


class ServerHarness:
    """Start a :class:`BatchServer` inside the running loop and hand
    out connected clients; tears everything down on exit."""

    def __init__(self, server: BatchServer) -> None:
        self.server = server
        self.clients = []

    async def client(self, **kwargs) -> ServeClient:
        client = ServeClient(port=self.server.port, **kwargs)
        await client.connect()
        self.clients.append(client)
        return client


def run_with_server(test_coro, tmp_path=None, **config_kwargs):
    """Drive one async test body under a live server.

    ``tmp_path`` (when given) becomes the cache directory; without it
    the server runs cache-less.  The body receives the harness.
    """
    config_kwargs.setdefault("workers", 1)
    config_kwargs.setdefault("checkpoint", False)
    config = ServeConfig(
        cache_dir=tmp_path if tmp_path is not None else None,
        **config_kwargs,
    )

    async def main():
        server = BatchServer(config)
        await server.start()
        harness = ServerHarness(server)
        try:
            await asyncio.wait_for(test_coro(harness), timeout=300)
        finally:
            for client in harness.clients:
                await client.close()
            await server.shutdown()
        return server

    return asyncio.run(main())


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"type": "submit", "id": "r1", "points": [ADDITION]}
        assert decode(encode(message)) == message

    def test_encode_is_one_line(self):
        assert encode({"type": "ping", "id": "x"}).endswith(b"\n")
        assert encode({"type": "ping", "id": "x"}).count(b"\n") == 1

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode(b"not json\n")
        with pytest.raises(ProtocolError):
            decode(b'["a", "list"]\n')
        with pytest.raises(ProtocolError):
            decode(b'{"no": "type"}\n')

    def test_point_spec_roundtrip_preserves_content_key(self):
        point = point_from_wire(ADDITION_VIS)
        again = point_from_wire(point_to_wire(point))
        assert again.content_key() == point.content_key()
        assert again.label() == point.label()

    def test_point_from_wire_named_config_and_scale(self):
        point = point_from_wire(
            {"benchmark": "thresh", "cpu": "inorder-1way", "scale": "small"}
        )
        assert point.cpu.issue_width == 1
        assert point.variant.value == "scalar"  # the default

    def test_point_from_wire_rejects_unknowns(self):
        for bad in (
            {"benchmark": "nope"},
            {**ADDITION, "variant": "turbo"},
            {**ADDITION, "cpu": "cray-1"},
            {**ADDITION, "scale": "galactic"},
            "not-a-dict",
        ):
            with pytest.raises(ProtocolError):
                point_from_wire(bad)

    def test_validate_lane(self):
        assert validate_lane(None) == "normal"
        assert validate_lane("high") == "high"
        with pytest.raises(ProtocolError):
            validate_lane("ludicrous")


# ---------------------------------------------------------------------------
# Resolution sources: cold / warm / coalesced
# ---------------------------------------------------------------------------


class TestResolution:
    def test_cold_then_warm_and_serial_byte_identity(self, tmp_path):
        reference = serial_reference(ADDITION)

        async def body(h: ServerHarness):
            client = await h.client()
            cold = await client.submit([ADDITION])
            assert cold.ok == 1 and cold.failed == 0
            assert cold.sources == {"simulated": 1}
            assert cold.results[0] == reference
            warm = await client.submit([ADDITION])
            assert warm.sources == {"cache": 1}
            assert warm.results[0] == reference

        server = run_with_server(body, tmp_path)
        assert server.stats.simulated == 1
        assert server.stats.cache_hits == 1
        assert dict(server.simulated_keys) and all(
            n == 1 for n in server.simulated_keys.values()
        )

    def test_coalescing_determinism(self, tmp_path):
        """Satellite: N concurrent identical grid requests → exactly
        one underlying simulation per point, all replies bit-equal to
        the serial reference."""
        grid = [ADDITION, ADDITION_VIS]
        references = [serial_reference(spec) for spec in grid]
        n_clients = 8

        async def body(h: ServerHarness):
            clients = [await h.client() for _ in range(n_clients)]
            outcomes = await asyncio.gather(*[
                client.submit(grid) for client in clients
            ])
            tallies = {}
            for outcome in outcomes:
                assert outcome.ok == len(grid) and outcome.failed == 0
                assert outcome.results == references  # bit-equal
                for key, count in outcome.sources.items():
                    tallies[key] = tallies.get(key, 0) + count
            # one creator per unique point; everyone else coalesced
            # (a fast fill may finish before later requests arrive,
            # which makes those cache hits — never a re-simulation)
            assert tallies.get("simulated") == len(grid)
            total = sum(tallies.values())
            assert total == n_clients * len(grid)

        server = run_with_server(body, tmp_path)
        assert server.stats.simulated == 2
        assert all(n == 1 for n in server.simulated_keys.values())
        assert server.stats.simulated + server.stats.coalesced + \
            server.stats.cache_hits == n_clients * 2

    def test_intra_request_duplicates_coalesce(self, tmp_path):
        async def body(h: ServerHarness):
            client = await h.client()
            outcome = await client.submit([ADDITION, ADDITION, ADDITION])
            assert outcome.ok == 3
            assert outcome.sources == {"simulated": 1, "coalesced": 2}
            assert outcome.results[0] == outcome.results[1] == \
                outcome.results[2]

        server = run_with_server(body, tmp_path)
        assert server.stats.simulated == 1

    def test_progress_messages_stream(self, tmp_path):
        async def body(h: ServerHarness):
            client = await h.client()
            outcome = await client.submit([ADDITION, THRESH], progress=True)
            assert [p["k"] for p in outcome.progress] == [1, 2]
            assert all(p["n"] == 2 for p in outcome.progress)
            assert {p["source"] for p in outcome.progress} == {"simulated"}

        run_with_server(body, tmp_path)


# ---------------------------------------------------------------------------
# Admission control + lanes
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_busy_rejects_without_enqueuing(self, tmp_path):
        async def body(h: ServerHarness):
            client = await h.client()
            with pytest.raises(ServeBusy):
                await client.submit([ADDITION, THRESH])  # 2 misses > 1
            stats = await client.stats()
            assert stats["busy_rejections"] == 1
            assert stats["queue_depth"] == 0  # nothing was enqueued
            assert stats["inflight"] == 0
            # a grid that fits is admitted and completes
            outcome = await client.submit([ADDITION])
            assert outcome.ok == 1

        run_with_server(body, tmp_path, queue_limit=1)

    def test_cache_hits_bypass_admission(self, tmp_path):
        async def body(h: ServerHarness):
            client = await h.client()
            await client.submit([ADDITION])  # fill
            # hits are resolved before the admission check ever runs
            outcome = await client.submit([ADDITION])
            assert outcome.sources == {"cache": 1}

        run_with_server(body, tmp_path, queue_limit=1)

    def test_priority_lane_is_acknowledged(self, tmp_path):
        async def body(h: ServerHarness):
            client = await h.client()
            outcome = await client.submit([ADDITION], priority="high")
            assert outcome.lane == "high"
            assert outcome.ok == 1

        run_with_server(body, tmp_path)

    def test_client_busy_retry(self, tmp_path):
        """retry_busy re-sends after backoff; the retry lands once the
        first grid's misses drain."""

        async def body(h: ServerHarness):
            eager = await h.client()
            patient = await h.client(retry_busy=20)
            first = asyncio.create_task(eager.submit([ADDITION, THRESH]))
            while h.server._pending_misses < 2:  # first grid owns the queue
                await asyncio.sleep(0.01)
            second = await patient.submit([ADDITION_VIS, THRESH])
            assert second.ok == 2
            outcome = await first
            assert outcome.ok == 2

        run_with_server(body, tmp_path, queue_limit=2)


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------


class TestFigures:
    def test_figure_request_cold_then_cached_hot(self, tmp_path):
        async def body(h: ServerHarness):
            client = await h.client()
            cold = await client.figure(
                "figure2", scale="tiny", benchmarks=["addition"]
            )
            assert cold.rows and cold.headers
            assert cold.sources.get("simulated") == 2  # scalar + vis
            before = (await client.stats())["simulated"]
            hot = await client.figure(
                "figure2", scale="tiny", benchmarks=["addition"]
            )
            assert hot.rows == cold.rows
            assert hot.sources == {"cache": 2}
            after = (await client.stats())["simulated"]
            assert after == before  # cached-hot: miss queue untouched

        run_with_server(body, tmp_path)

    def test_unknown_figure_is_bad_request(self, tmp_path):
        async def body(h: ServerHarness):
            client = await h.client()
            with pytest.raises(RuntimeError, match="unknown figure"):
                await client.figure("figure99")

        run_with_server(body, tmp_path)


# ---------------------------------------------------------------------------
# Errors, failures, lifecycle
# ---------------------------------------------------------------------------


class TestErrorsAndLifecycle:
    def test_bad_point_spec_is_error_reply(self, tmp_path):
        async def body(h: ServerHarness):
            client = await h.client()
            with pytest.raises(RuntimeError, match="unknown benchmark"):
                await client.submit([{"benchmark": "nope"}])
            assert await client.ping()  # connection survives

        run_with_server(body, tmp_path)

    def test_unknown_message_type_is_error_reply(self, tmp_path):
        async def body(h: ServerHarness):
            client = await h.client()
            rid, queue = client._new_request()
            await client._send({"type": "frobnicate", "id": rid})
            with pytest.raises(RuntimeError, match="unknown message type"):
                await client._next(queue)

        run_with_server(body, tmp_path)

    def test_injected_point_failure_streams_back(self, tmp_path):
        plan = FaultPlan(tmp_path, [
            {"match": "thresh[scalar]", "action": "error", "times": -1},
        ])

        async def body(h: ServerHarness):
            client = await h.client()
            outcome = await client.submit([ADDITION, THRESH])
            assert outcome.ok == 1 and outcome.failed == 1
            assert outcome.results[0] is not None
            failure = outcome.failures[1]
            assert failure["status"] == "failed"
            assert "injected fault" in failure["message"]

        with plan:
            server = run_with_server(body, tmp_path)
        assert server.stats.failed_points == 1

    def test_stats_and_ping_and_shutdown_message(self, tmp_path):
        async def body(h: ServerHarness):
            client = await h.client()
            assert await client.ping()
            stats = await client.stats()
            assert stats["connections"] == 1
            assert stats["queue_limit"] == 256
            await client.shutdown()
            await asyncio.wait_for(h.server.wait_stopped(), timeout=30)

        run_with_server(body, tmp_path)

    def test_submit_while_draining_is_rejected(self, tmp_path):
        async def body(h: ServerHarness):
            client = await h.client()
            h.server._draining = True
            with pytest.raises(RuntimeError, match="shutting down"):
                await client.submit([ADDITION])
            h.server._draining = False

        run_with_server(body, tmp_path)


# ---------------------------------------------------------------------------
# Crash-only serving: journal, replay, quarantine, health
# ---------------------------------------------------------------------------


class TestCrashOnly:
    def test_health_verb(self, tmp_path):
        async def body(h: ServerHarness):
            client = await h.client()
            health = await client.health()
            assert health["healthy"] is True
            assert health["draining"] is False
            assert health["journal"]["lag"] == 0
            assert health["journal"]["path"].endswith("serve_journal.jsonl")
            assert health["pool"]["generation"] == 0
            assert health["quarantine"]["poisoned"] == 0
            assert set(health["lanes"]) == set(protocol.LANES)
            assert health["queue_limit"] == h.server.config.queue_limit

        run_with_server(body, tmp_path)

    def test_admitted_before_ack_then_terminal_ok(self, tmp_path):
        key = point_from_wire(ADDITION).content_key()

        async def body(h: ServerHarness):
            client = await h.client()
            await client.submit([ADDITION])
            record = h.server.journal.records[key]
            assert record["status"] == "ok"
            assert record["source"] == "simulated"
            assert record["elapsed_s"] > 0

        run_with_server(body, tmp_path)
        # shutdown compacted the journal: terminal ok history is gone
        # from disk, only the compatible header remains
        header, records = load_journal_records(journal_path(tmp_path))
        assert header is not None
        assert records == {}

    def test_replay_finishes_admitted_point(self, tmp_path):
        """A journal with an unfinished ``admitted`` record (the
        previous incarnation was SIGKILLed before resolving it) is
        replayed: the orphan miss completes with no client asking."""
        reference = serial_reference(ADDITION)
        point = point_from_wire(ADDITION)
        cache = DiskCache(tmp_path)
        journal = ServeJournal(tmp_path, cache_version=cache.version)
        journal.record_admitted(
            point.content_key(), point_to_wire(point), "normal",
            point.label(),
        )
        journal.close()

        async def body(h: ServerHarness):
            client = await h.client()
            deadline = asyncio.get_running_loop().time() + 120
            while (await client.health())["journal"]["lag"] > 0:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.05)
            outcome = await client.submit([ADDITION])
            assert outcome.sources == {"cache": 1}
            assert outcome.results[0] == reference

        server = run_with_server(body, tmp_path)
        assert server.stats.journal_replayed == 1
        assert server.stats.journal_recovered == 0
        assert all(n == 1 for n in server.simulated_keys.values())

    def test_replay_recovers_cached_point_without_resimulation(
        self, tmp_path
    ):
        """An unfinished record whose result *did* land in the simcache
        before the kill is terminalized from the cache — the
        zero-duplicate half of crash recovery."""
        point = point_from_wire(ADDITION)
        key = point.content_key()
        stats, elapsed, _resumed = _simulate_point(point, True)
        cache = DiskCache(tmp_path)
        cache.store(key, stats, point=point, elapsed=elapsed)
        journal = ServeJournal(tmp_path, cache_version=cache.version)
        journal.record_admitted(
            key, point_to_wire(point), "normal", point.label()
        )
        journal.close()

        async def body(h: ServerHarness):
            client = await h.client()
            health = await client.health()
            assert health["journal"]["recovered"] == 1
            assert health["journal"]["lag"] == 0

        server = run_with_server(body, tmp_path)
        assert server.stats.journal_recovered == 1
        assert server.stats.journal_replayed == 0
        assert server.stats.simulated == 0  # never re-simulated

    def test_poisoned_point_is_refused_without_simulation(self, tmp_path):
        key = point_from_wire(ADDITION).content_key()

        async def body(h: ServerHarness):
            h.server._poisoned[key] = {
                "label": "addition[scalar]", "status": "poisoned",
            }
            client = await h.client()
            outcome = await client.submit([ADDITION, THRESH])
            assert outcome.ok == 1 and outcome.failed == 1
            failure = outcome.failures[0]
            assert failure["status"] == "poisoned"
            assert "release" in failure["message"]
            health = await client.health()
            assert health["quarantine"]["rejections"] == 1

        server = run_with_server(body, tmp_path)
        assert server.stats.poisoned_rejections == 1
        assert key not in server.simulated_keys  # quarantine held


class TestReconnectingClient:
    def test_reconnect_resubmits_pending_request(self, tmp_path):
        """Tear the server side of the connection mid-request: a
        reconnect-enabled client heals, idempotently resubmits, and
        the request completes as if nothing happened."""
        reference = serial_reference(ADDITION)

        async def body(h: ServerHarness):
            client = await h.client(reconnect=10)
            task = asyncio.create_task(client.submit([ADDITION]))
            while not h.server._inflight:
                await asyncio.sleep(0.005)
            for conn in list(h.server._connections):
                conn.closed = True
                conn.writer.close()
            outcome = await asyncio.wait_for(task, timeout=240)
            assert outcome.ok == 1
            assert outcome.results[0] == reference
            assert client.reconnects >= 1

        server = run_with_server(body, tmp_path)
        # the resubmitted request coalesced/cache-hit; never re-simulated
        assert all(n == 1 for n in server.simulated_keys.values())

    def test_no_reconnect_fails_fast(self, tmp_path):
        async def body(h: ServerHarness):
            client = await h.client()  # reconnect disabled (default)
            task = asyncio.create_task(client.submit([ADDITION]))
            while not h.server._inflight:
                await asyncio.sleep(0.005)
            for conn in list(h.server._connections):
                conn.closed = True
                conn.writer.close()
            with pytest.raises(ServeConnectionError):
                await asyncio.wait_for(task, timeout=60)

        run_with_server(body, tmp_path)

    def test_decode_errors_are_logged_and_surfaced(self):
        """An undecodable server line is a transport fault: counted,
        logged, and the pending request raises — never silently
        swallowed (the old ``except Exception: pass``)."""

        async def main():
            async def handler(reader, writer):
                writer.write(b"}{ not json\n")
                await writer.drain()

            gateway = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = gateway.sockets[0].getsockname()[1]
            client = ServeClient(port=port)
            await client.connect()
            rid, queue = client._new_request()
            try:
                await client._send({"type": "ping", "id": rid})
                with pytest.raises(ServeConnectionError):
                    await asyncio.wait_for(client._next(queue), timeout=30)
            finally:
                client._finish_request(rid)
                await client.close()
                gateway.close()
                await gateway.wait_closed()
            assert client.decode_errors == 1

        asyncio.run(main())

    def test_busy_retry_uses_policy_and_counts_attempts(self, tmp_path):
        async def body(h: ServerHarness):
            client = await h.client(retry_busy=2, retry_backoff_s=0.01)
            # saturate the queue so every submit of 2 misses is refused
            h.server._pending_misses = h.server.config.queue_limit
            try:
                with pytest.raises(ServeBusy) as excinfo:
                    await client.submit([ADDITION, THRESH])
            finally:
                h.server._pending_misses = 0
            assert excinfo.value.attempts == 3  # 1 try + 2 retries

        run_with_server(body, tmp_path, queue_limit=1)
