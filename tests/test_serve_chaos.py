"""Chaos tests for the serving layer: kills land, results survive.

Two scenarios from the issue, both against a *real* server subprocess
(``repro-experiments serve``) managed by :class:`tests.chaos.ServeProcess`,
with faults injected deterministically through the ``ckpt:`` labels
(the hook fires right **after** a cycle-level snapshot is persisted,
so a snapshot provably exists when the fault lands):

* **Worker SIGKILL mid-point** — the fault plan SIGKILLs the worker
  right after its first snapshot.  The pool breaks, the server
  rebuilds it and retries, the retry restores from the snapshot, and
  the waiting client receives a result byte-identical to the serial
  reference — it never learns anything went wrong.

* **Server SIGTERM mid-grid** — a worker is slow-rolled mid-point
  (after snapshotting); SIGTERM with a short grace window preempts it.
  The client is told (``preempted`` failure or torn connection), the
  server exits 0, the snapshot survives on disk, and a restarted
  server serving the same cache completes the re-request by resuming
  mid-point (``checkpoint_resumes >= 1``) with byte-identical stats.

* **Server SIGKILL mid-grid** (crash-only) — no grace, no shutdown
  hook: the journal alone carries the workload.  The restarted server
  replays it, finishes the stranded point with *no client asking*, and
  its counters (``journal_replayed`` / ``journal_recovered`` /
  ``checkpoint_resumes`` / ``duplicate_simulations``) exactly match
  the per-request tallies the clients observed.

* **Poison-point quarantine** — a point whose worker dies three
  consecutive attributed times terminates ``poisoned`` within the
  retry budget while the rest of the grid completes; resubmission is
  refused without simulation, and the quarantine record survives in
  the journal for ``cache gc --release-poisoned``.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from pathlib import Path

from repro.experiments.parallel import _simulate_point
from repro.serve.client import (
    ServeClient,
    ServeConnectionError,
    SubmitOutcome,
)
from repro.serve.journal import journal_path, load_journal_records
from repro.serve.protocol import point_from_wire
from repro.serve.server import SERVE_RUNNING_DIRNAME
from tests.chaos import FaultPlan, ServeProcess

ADDITION = {"benchmark": "addition", "variant": "scalar", "scale": "tiny"}
ADDITION_VIS = {"benchmark": "addition", "variant": "vis", "scale": "tiny"}

#: small enough that a tiny-scale point writes several snapshots
CKPT_ARGS = ("--jobs", "1", "--checkpoint-interval", "2000")


def serial_reference(spec) -> dict:
    stats, _elapsed, _resumed = _simulate_point(point_from_wire(spec), True)
    return json.loads(json.dumps(stats.to_dict(), sort_keys=True))


def snapshot_files(out_dir: Path):
    return list(
        (out_dir / ".simcache" / "checkpoints").rglob("ckpt_*.ckpt.json")
    )


def kill_orphan_workers(out_dir: Path) -> None:
    """SIGKILL workers orphaned by a server SIGKILL (a kill -9 takes
    the server, not its pool).  Their pids are exactly what the crash
    attribution markers record — the same files ``cache gc`` sweeps."""
    marker_dir = out_dir / ".simcache" / SERVE_RUNNING_DIRNAME
    if not marker_dir.is_dir():
        return
    for marker in marker_dir.glob("*.json"):
        try:
            pid = int(json.loads(marker.read_text(encoding="utf-8"))["pid"])
            os.kill(pid, signal.SIGKILL)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            pass


async def _submit_one(port: int, spec, **client_kwargs) -> SubmitOutcome:
    async with ServeClient(port=port, **client_kwargs) as client:
        return await client.submit([spec])


async def _stats(port: int) -> dict:
    async with ServeClient(port=port) as client:
        return await client.stats()


class TestWorkerKillMidPoint:
    def test_client_gets_result_via_checkpoint_resume(self, tmp_path):
        reference = serial_reference(ADDITION)
        plan = FaultPlan(tmp_path, [
            {"match": "ckpt:addition[scalar]", "action": "kill", "times": 1},
        ])
        with ServeProcess(tmp_path / "out", CKPT_ARGS, plan=plan) as serve:
            outcome, stats = asyncio.run(self._drive(serve.port))
        assert plan.shots_fired(0) == 1, "the SIGKILL landed"
        # the client never noticed: one clean, byte-identical result
        assert outcome.ok == 1 and outcome.failed == 0
        assert outcome.results[0] == reference
        assert outcome.point_sources[0] == "simulated"
        # and the server paid for it the way the design says it must
        assert stats["pool_rebuilds"] >= 1
        assert stats["retries"] >= 1
        assert stats["checkpoint_resumes"] >= 1
        assert stats["duplicate_simulations"] == 0

    @staticmethod
    async def _drive(port):
        outcome = await _submit_one(port, ADDITION)
        stats = await _stats(port)
        return outcome, stats


class TestServerSigtermMidGrid:
    def test_restart_completes_from_snapshots(self, tmp_path):
        out_dir = tmp_path / "out"
        reference = serial_reference(ADDITION_VIS)
        # slow-roll the point right after its first snapshot, so the
        # SIGTERM provably lands mid-point with a snapshot on disk
        plan = FaultPlan(tmp_path, [
            {"match": "ckpt:addition[vis]", "action": "sleep",
             "seconds": 120, "times": 1},
        ])

        with ServeProcess(
            out_dir, CKPT_ARGS + ("--grace", "0.5"), plan=plan
        ) as serve:
            preempted = asyncio.run(
                self._submit_then_sigterm(serve, out_dir)
            )
            assert serve.wait(timeout=30) == 0, serve.stderr_text[-2000:]
        # the kill interrupted the point, not the bookkeeping
        assert plan.shots_fired(0) == 1
        assert snapshot_files(out_dir), "snapshots survived the SIGTERM"
        if preempted is not None:  # reply raced the close and won
            assert preempted.failed == 1
            assert preempted.failures[0]["status"] == "preempted"

        # restart on the same cache: the re-request resumes mid-point
        with ServeProcess(out_dir, CKPT_ARGS, plan=plan) as serve:
            outcome, stats = asyncio.run(self._redrive(serve.port))
        assert outcome.ok == 1 and outcome.failed == 0
        assert outcome.results[0] == reference
        assert stats["checkpoint_resumes"] >= 1, (
            "the restarted server started from cycle 0 instead of the "
            "surviving snapshot"
        )

    @staticmethod
    async def _submit_then_sigterm(serve, out_dir):
        """Submit, wait for the worker's first snapshot to hit disk
        (the deterministic 'mid-point' signal), then SIGTERM."""
        async with ServeClient(port=serve.port) as client:
            task = asyncio.create_task(client.submit([ADDITION_VIS]))
            deadline = time.monotonic() + 90
            while not snapshot_files(out_dir):
                if time.monotonic() > deadline:  # pragma: no cover
                    raise AssertionError("no snapshot ever appeared")
                await asyncio.sleep(0.05)
            serve.sigterm()
            try:
                return await asyncio.wait_for(task, timeout=30)
            except (ServeConnectionError, asyncio.TimeoutError):
                return None  # torn connection is an accepted outcome

    @staticmethod
    async def _redrive(port):
        outcome = await _submit_one(port, ADDITION_VIS)
        stats = await _stats(port)
        return outcome, stats


class TestServerSigkillRecovery:
    """Crash-only proof: SIGKILL (no shutdown hook runs) strands a
    mid-flight point; the journal alone recovers it, byte-identically,
    with zero duplicate simulations — and the restarted server's
    counters exactly match what the clients observed."""

    def test_journal_replay_completes_the_workload(self, tmp_path):
        out_dir = tmp_path / "out"
        references = {
            "addition": serial_reference(ADDITION),
            "vis": serial_reference(ADDITION_VIS),
        }
        # slow-roll the second point right after its first snapshot so
        # the SIGKILL provably lands mid-point, snapshot on disk
        plan = FaultPlan(tmp_path, [
            {"match": "ckpt:addition[vis]", "action": "sleep",
             "seconds": 120, "times": 1},
        ])

        with ServeProcess(out_dir, CKPT_ARGS, plan=plan) as serve:
            asyncio.run(self._submit_then_sigkill(serve, plan, out_dir))
            assert serve.wait(timeout=30) != 0  # killed, not graceful
        assert plan.shots_fired(0) == 1

        # the fsynced journal survived the kill: the finished point is
        # terminal, the stranded one still admitted
        state_dir = out_dir / ".simcache"
        _header, records = load_journal_records(journal_path(state_dir))
        vis_key = point_from_wire(ADDITION_VIS).content_key()
        add_key = point_from_wire(ADDITION).content_key()
        assert records[add_key]["status"] == "ok"
        assert records[vis_key]["status"] == "admitted"

        with ServeProcess(out_dir, CKPT_ARGS, plan=plan) as serve:
            outcome, health, stats = asyncio.run(self._redrive(serve.port))

        # byte-identical completion of the original workload
        assert outcome.ok == 2 and outcome.failed == 0
        assert outcome.results[0] == references["addition"]
        assert outcome.results[1] == references["vis"]

        # counters exactly match the per-request client tallies: the
        # finished point was a cache hit, the stranded one resolved by
        # the replayed orphan (our request saw it as coalesced if it
        # was still in flight, cache if the orphan won the race)
        tallies = dict(outcome.sources)
        assert stats["cache_hits"] == tallies.get("cache", 0)
        assert stats["coalesced"] == tallies.get("coalesced", 0)
        assert stats["simulated"] == tallies.get("simulated", 0)
        assert sum(tallies.values()) == 2  # every point accounted for
        assert stats["journal_replayed"] == 1
        assert stats["journal_recovered"] == 0
        assert stats["checkpoint_resumes"] == 1, (
            "the replayed point restarted from cycle 0 instead of its "
            "surviving snapshot"
        )
        assert stats["duplicate_simulations"] == 0
        assert stats["poisoned"] == 0
        assert stats["pool_rebuilds"] == 0
        assert health["journal"]["lag"] == 0
        assert health["quarantine"]["poisoned"] == 0

    @staticmethod
    async def _submit_then_sigkill(serve, plan, out_dir):
        async with ServeClient(port=serve.port) as client:
            task = asyncio.create_task(
                client.submit([ADDITION, ADDITION_VIS])
            )
            deadline = time.monotonic() + 90
            while plan.shots_fired(0) < 1:
                assert time.monotonic() < deadline, "slow-roll never fired"
                await asyncio.sleep(0.05)
            serve.sigkill()
            # kill -9 orphans the sleeping worker too; take it down so
            # it cannot hold the server's pipes (or the point) hostage
            kill_orphan_workers(out_dir)
            try:
                await asyncio.wait_for(task, timeout=30)
            except (ServeConnectionError, asyncio.TimeoutError):
                pass  # torn connection: the journal owns the rest

    @staticmethod
    async def _redrive(port):
        async with ServeClient(port=port) as client:
            outcome = await client.submit([ADDITION, ADDITION_VIS])
            # the orphan resolves before 'done' is sent for any request
            # coalescing onto it; lag 0 means the journal is settled
            deadline = time.monotonic() + 120
            while (await client.health())["journal"]["lag"] > 0:
                assert time.monotonic() < deadline
                await asyncio.sleep(0.05)
            health = await client.health()
            stats = await client.stats()
        return outcome, health, stats


class TestPoisonQuarantine:
    """A point that SIGKILLs its worker three consecutive times is
    quarantined within the retry budget; the rest of the grid
    completes; resubmission is refused without simulation; the
    quarantine record survives in the journal."""

    def test_three_kills_poison_the_point(self, tmp_path):
        out_dir = tmp_path / "out"
        reference = serial_reference(ADDITION)
        plan = FaultPlan(tmp_path, [
            {"match": "ckpt:addition[vis]", "action": "kill", "times": 3},
        ])
        # tighter snapshot cadence: the kill fires after *each* snapshot,
        # and three strikes must fit inside the point's ~6k cycles
        args = ("--jobs", "1", "--checkpoint-interval", "1000",
                "--poison-threshold", "3", "--max-retries", "2")

        with ServeProcess(out_dir, args, plan=plan) as serve:
            outcome, again, health, stats = asyncio.run(
                self._drive(serve.port)
            )
            serve.sigterm()
            assert serve.wait(timeout=30) == 0

        assert plan.shots_fired(0) == 3, "all three kills landed"
        # the innocent rest of the grid completed byte-identically
        assert outcome.ok == 1 and outcome.failed == 1
        assert outcome.results[0] == reference
        failure = outcome.failures[1]
        assert failure["status"] == "poisoned"
        assert failure["attempts"] == 3  # within the retry budget
        assert "release" in failure["message"]
        # resubmission is refused without touching the fleet
        assert again.failed == 1
        assert again.failures[0]["status"] == "poisoned"
        assert stats["poisoned"] == 1
        assert stats["poisoned_rejections"] >= 1
        assert stats["pool_rebuilds"] == 3
        assert health["quarantine"]["poisoned"] == 1
        assert health["quarantine"]["threshold"] == 3

        # the quarantine record survived shutdown compaction: the next
        # incarnation (and `cache gc --release-poisoned`) can see it
        _header, records = load_journal_records(
            journal_path(out_dir / ".simcache")
        )
        vis_key = point_from_wire(ADDITION_VIS).content_key()
        assert records[vis_key]["status"] == "poisoned"
        assert records[vis_key]["diagnostics"]["worker_losses"] == 3

    @staticmethod
    async def _drive(port):
        async with ServeClient(port=port) as client:
            outcome = await client.submit([ADDITION, ADDITION_VIS])
            again = await client.submit([ADDITION_VIS])
            health = await client.health()
            stats = await client.stats()
        return outcome, again, health, stats
