"""Chaos tests for the serving layer: kills land, results survive.

Two scenarios from the issue, both against a *real* server subprocess
(``repro-experiments serve``) managed by :class:`tests.chaos.ServeProcess`,
with faults injected deterministically through the ``ckpt:`` labels
(the hook fires right **after** a cycle-level snapshot is persisted,
so a snapshot provably exists when the fault lands):

* **Worker SIGKILL mid-point** — the fault plan SIGKILLs the worker
  right after its first snapshot.  The pool breaks, the server
  rebuilds it and retries, the retry restores from the snapshot, and
  the waiting client receives a result byte-identical to the serial
  reference — it never learns anything went wrong.

* **Server SIGTERM mid-grid** — a worker is slow-rolled mid-point
  (after snapshotting); SIGTERM with a short grace window preempts it.
  The client is told (``preempted`` failure or torn connection), the
  server exits 0, the snapshot survives on disk, and a restarted
  server serving the same cache completes the re-request by resuming
  mid-point (``checkpoint_resumes >= 1``) with byte-identical stats.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from repro.experiments.parallel import _simulate_point
from repro.serve.client import (
    ServeClient,
    ServeConnectionError,
    SubmitOutcome,
)
from repro.serve.protocol import point_from_wire
from tests.chaos import FaultPlan, ServeProcess

ADDITION = {"benchmark": "addition", "variant": "scalar", "scale": "tiny"}
ADDITION_VIS = {"benchmark": "addition", "variant": "vis", "scale": "tiny"}

#: small enough that a tiny-scale point writes several snapshots
CKPT_ARGS = ("--jobs", "1", "--checkpoint-interval", "2000")


def serial_reference(spec) -> dict:
    stats, _elapsed, _resumed = _simulate_point(point_from_wire(spec), True)
    return json.loads(json.dumps(stats.to_dict(), sort_keys=True))


def snapshot_files(out_dir: Path):
    return list(
        (out_dir / ".simcache" / "checkpoints").rglob("ckpt_*.ckpt.json")
    )


async def _submit_one(port: int, spec, **client_kwargs) -> SubmitOutcome:
    async with ServeClient(port=port, **client_kwargs) as client:
        return await client.submit([spec])


async def _stats(port: int) -> dict:
    async with ServeClient(port=port) as client:
        return await client.stats()


class TestWorkerKillMidPoint:
    def test_client_gets_result_via_checkpoint_resume(self, tmp_path):
        reference = serial_reference(ADDITION)
        plan = FaultPlan(tmp_path, [
            {"match": "ckpt:addition[scalar]", "action": "kill", "times": 1},
        ])
        with ServeProcess(tmp_path / "out", CKPT_ARGS, plan=plan) as serve:
            outcome, stats = asyncio.run(self._drive(serve.port))
        assert plan.shots_fired(0) == 1, "the SIGKILL landed"
        # the client never noticed: one clean, byte-identical result
        assert outcome.ok == 1 and outcome.failed == 0
        assert outcome.results[0] == reference
        assert outcome.point_sources[0] == "simulated"
        # and the server paid for it the way the design says it must
        assert stats["pool_rebuilds"] >= 1
        assert stats["retries"] >= 1
        assert stats["checkpoint_resumes"] >= 1
        assert stats["duplicate_simulations"] == 0

    @staticmethod
    async def _drive(port):
        outcome = await _submit_one(port, ADDITION)
        stats = await _stats(port)
        return outcome, stats


class TestServerSigtermMidGrid:
    def test_restart_completes_from_snapshots(self, tmp_path):
        out_dir = tmp_path / "out"
        reference = serial_reference(ADDITION_VIS)
        # slow-roll the point right after its first snapshot, so the
        # SIGTERM provably lands mid-point with a snapshot on disk
        plan = FaultPlan(tmp_path, [
            {"match": "ckpt:addition[vis]", "action": "sleep",
             "seconds": 120, "times": 1},
        ])

        with ServeProcess(
            out_dir, CKPT_ARGS + ("--grace", "0.5"), plan=plan
        ) as serve:
            preempted = asyncio.run(
                self._submit_then_sigterm(serve, out_dir)
            )
            assert serve.wait(timeout=30) == 0, serve.stderr_text[-2000:]
        # the kill interrupted the point, not the bookkeeping
        assert plan.shots_fired(0) == 1
        assert snapshot_files(out_dir), "snapshots survived the SIGTERM"
        if preempted is not None:  # reply raced the close and won
            assert preempted.failed == 1
            assert preempted.failures[0]["status"] == "preempted"

        # restart on the same cache: the re-request resumes mid-point
        with ServeProcess(out_dir, CKPT_ARGS, plan=plan) as serve:
            outcome, stats = asyncio.run(self._redrive(serve.port))
        assert outcome.ok == 1 and outcome.failed == 0
        assert outcome.results[0] == reference
        assert stats["checkpoint_resumes"] >= 1, (
            "the restarted server started from cycle 0 instead of the "
            "surviving snapshot"
        )

    @staticmethod
    async def _submit_then_sigterm(serve, out_dir):
        """Submit, wait for the worker's first snapshot to hit disk
        (the deterministic 'mid-point' signal), then SIGTERM."""
        async with ServeClient(port=serve.port) as client:
            task = asyncio.create_task(client.submit([ADDITION_VIS]))
            deadline = time.monotonic() + 90
            while not snapshot_files(out_dir):
                if time.monotonic() > deadline:  # pragma: no cover
                    raise AssertionError("no snapshot ever appeared")
                await asyncio.sleep(0.05)
            serve.sigterm()
            try:
                return await asyncio.wait_for(task, timeout=30)
            except (ServeConnectionError, asyncio.TimeoutError):
                return None  # torn connection is an accepted outcome

    @staticmethod
    async def _redrive(port):
        outcome = await _submit_one(port, ADDITION_VIS)
        stats = await _stats(port)
        return outcome, stats
