"""Chaos-test helpers: deterministic fault plans for the experiment
runner's fault-injection hook (``repro.experiments.faults.maybe_inject``).

A *fault plan* is a JSON file naming which simulation points to break
and how::

    {"faults": [
        {"match": "addition[vis]", "action": "kill", "times": 1},
        {"match": "scale[base]", "action": "hang"},
        {"match": "blend", "action": "error", "times": -1}
    ]}

``match`` is a substring of the point label
(``benchmark[variant]@config``), ``action`` is one of ``kill`` /
``hang`` / ``sleep`` / ``error`` and ``times`` bounds how often the
entry fires across *all* processes (claimed atomically via O_EXCL
token files; ``-1`` = every time).

:class:`FaultPlan` writes the plan and points ``REPRO_FAULT_PLAN`` at
it — either in this process (monkeypatch-style, for in-process serial
runs) or via an environment dict handed to a subprocess.  Used by
``tests/test_faults.py``; kept importable on its own so ad-hoc chaos
runs work from a shell too::

    python -c "
    from tests.chaos import FaultPlan
    ..."
"""

from __future__ import annotations

import json
import os
import re
import select
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments import faults

ENV = faults.ENV_FAULT_PLAN

REPO = Path(__file__).resolve().parents[1]


class FaultPlan:
    """Write a fault plan to disk and expose it via the environment.

    Entries are ``dict(match=..., action=..., times=..., seconds=...)``
    exactly as consumed by :func:`repro.experiments.faults.maybe_inject`.
    """

    def __init__(self, directory, entries: List[Dict]) -> None:
        self.path = Path(directory) / "fault_plan.json"
        self.entries = entries
        self.path.write_text(
            json.dumps({"faults": entries}), encoding="utf-8"
        )
        self._previous: Optional[str] = None
        self._armed = False

    # -- in-process use -----------------------------------------------------

    def arm(self) -> "FaultPlan":
        """Point ``REPRO_FAULT_PLAN`` at the plan in this process (and,
        via inheritance, any worker the pool spawns/forks)."""
        self._previous = os.environ.get(ENV)
        os.environ[ENV] = str(self.path)
        self._armed = True
        faults._PLAN_CACHE = None  # drop the per-process plan cache
        return self

    def disarm(self) -> None:
        if not self._armed:
            return
        if self._previous is None:
            os.environ.pop(ENV, None)
        else:
            os.environ[ENV] = self._previous
        self._armed = False
        faults._PLAN_CACHE = None

    def __enter__(self) -> "FaultPlan":
        return self.arm()

    def __exit__(self, *exc_info) -> None:
        self.disarm()

    # -- subprocess use -----------------------------------------------------

    def environ(self, base: Optional[Dict[str, str]] = None) -> Dict[str, str]:
        """An environment dict for ``subprocess.run(..., env=...)``."""
        env = dict(base if base is not None else os.environ)
        env[ENV] = str(self.path)
        return env

    # -- bookkeeping --------------------------------------------------------

    def shots_fired(self, index: int = 0) -> int:
        """How many times plan entry ``index`` has fired (token files)."""
        fired = 0
        while Path(f"{self.path}.fired.{index}.{fired}").exists():
            fired += 1
        return fired


# ---------------------------------------------------------------------------
# Serve-mode chaos: a managed simulation-service subprocess
# ---------------------------------------------------------------------------


def free_port() -> int:
    """An OS-assigned free TCP port, released for immediate reuse —
    lets a restarted server bind the *same* address its predecessor
    had, so reconnecting clients heal onto the new incarnation."""
    import socket

    with socket.socket() as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def serve_env(plan: Optional[FaultPlan] = None) -> Dict[str, str]:
    """Subprocess environment with ``repro`` importable (and the fault
    plan armed, when given) — spawn-started serve workers inherit it."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if plan is not None:
        env = plan.environ(env)
    return env


_READY_RE = re.compile(
    r"SERVE ready pid=(?P<pid>\d+) addr=(?P<host>[\d.]+):(?P<port>\d+)"
)


class ServeProcess:
    """A ``repro-experiments serve`` subprocess under test control.

    Starts the server, waits for (and parses) its machine-readable
    ready line, and exposes the chaos handles the serve tests need:
    ``sigterm()`` / ``sigkill()`` the *server*, while ``FaultPlan``
    entries on ``ckpt:`` labels break its *workers* deterministically.
    Use as a context manager; exit terminates the server (SIGKILL
    fallback) and captures stderr in ``stderr_text``.
    """

    def __init__(
        self,
        out_dir,
        args: Sequence[str] = (),
        plan: Optional[FaultPlan] = None,
        start_timeout: float = 120.0,
    ) -> None:
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments.cli", "serve",
                "--out", str(out_dir), *args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            cwd=REPO,
            env=serve_env(plan),
            # own session: the server becomes its process group's
            # leader, so sigkill_tree can take out orphaned spawn
            # workers too (an idle orphan blocks on its call queue
            # forever and would hold our stderr pipe open)
            start_new_session=True,
        )
        self.port: Optional[int] = None
        self.stderr_text = ""
        deadline = time.monotonic() + start_timeout
        line = ""
        while time.monotonic() < deadline:
            ready, _, _ = select.select(
                [self.proc.stdout], [], [], min(1.0, start_timeout)
            )
            if not ready:
                if self.proc.poll() is not None:
                    break
                continue
            line = self.proc.stdout.readline()
            break
        match = _READY_RE.search(line or "")
        if match is None:
            self._reap(5.0)
            raise RuntimeError(
                f"server never became ready (stdout={line!r}, "
                f"stderr={self.stderr_text[-2000:]!r})"
            )
        self.port = int(match.group("port"))

    @property
    def pid(self) -> int:
        return self.proc.pid

    def sigterm(self) -> None:
        self.proc.send_signal(signal.SIGTERM)

    def sigkill(self) -> None:
        self.proc.kill()

    def sigkill_tree(self) -> None:
        """SIGKILL the server *and* its worker pool (the whole process
        group) — the no-survivors crash the journal must recover from."""
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            self.proc.kill()

    def wait(self, timeout: float = 30.0) -> int:
        """Wait for exit; returns the return code (collects stderr)."""
        self._reap(timeout)
        return self.proc.returncode

    def _reap(self, timeout: float) -> None:
        if getattr(self, "_reaped", False):
            return
        try:
            _, err = self.proc.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            _, err = self.proc.communicate(timeout=10.0)
        except ValueError:  # pipes already closed
            err = ""
        self.stderr_text += err or ""
        self._reaped = True

    def __enter__(self) -> "ServeProcess":
        return self

    def __exit__(self, *exc_info) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=15.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
        self._reap(10.0)
