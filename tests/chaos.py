"""Chaos-test helpers: deterministic fault plans for the experiment
runner's fault-injection hook (``repro.experiments.faults.maybe_inject``).

A *fault plan* is a JSON file naming which simulation points to break
and how::

    {"faults": [
        {"match": "addition[vis]", "action": "kill", "times": 1},
        {"match": "scale[base]", "action": "hang"},
        {"match": "blend", "action": "error", "times": -1}
    ]}

``match`` is a substring of the point label
(``benchmark[variant]@config``), ``action`` is one of ``kill`` /
``hang`` / ``sleep`` / ``error`` and ``times`` bounds how often the
entry fires across *all* processes (claimed atomically via O_EXCL
token files; ``-1`` = every time).

:class:`FaultPlan` writes the plan and points ``REPRO_FAULT_PLAN`` at
it — either in this process (monkeypatch-style, for in-process serial
runs) or via an environment dict handed to a subprocess.  Used by
``tests/test_faults.py``; kept importable on its own so ad-hoc chaos
runs work from a shell too::

    python -c "
    from tests.chaos import FaultPlan
    ..."
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments import faults

ENV = faults.ENV_FAULT_PLAN


class FaultPlan:
    """Write a fault plan to disk and expose it via the environment.

    Entries are ``dict(match=..., action=..., times=..., seconds=...)``
    exactly as consumed by :func:`repro.experiments.faults.maybe_inject`.
    """

    def __init__(self, directory, entries: List[Dict]) -> None:
        self.path = Path(directory) / "fault_plan.json"
        self.entries = entries
        self.path.write_text(
            json.dumps({"faults": entries}), encoding="utf-8"
        )
        self._previous: Optional[str] = None
        self._armed = False

    # -- in-process use -----------------------------------------------------

    def arm(self) -> "FaultPlan":
        """Point ``REPRO_FAULT_PLAN`` at the plan in this process (and,
        via inheritance, any worker the pool spawns/forks)."""
        self._previous = os.environ.get(ENV)
        os.environ[ENV] = str(self.path)
        self._armed = True
        faults._PLAN_CACHE = None  # drop the per-process plan cache
        return self

    def disarm(self) -> None:
        if not self._armed:
            return
        if self._previous is None:
            os.environ.pop(ENV, None)
        else:
            os.environ[ENV] = self._previous
        self._armed = False
        faults._PLAN_CACHE = None

    def __enter__(self) -> "FaultPlan":
        return self.arm()

    def __exit__(self, *exc_info) -> None:
        self.disarm()

    # -- subprocess use -----------------------------------------------------

    def environ(self, base: Optional[Dict[str, str]] = None) -> Dict[str, str]:
        """An environment dict for ``subprocess.run(..., env=...)``."""
        env = dict(base if base is not None else os.environ)
        env[ENV] = str(self.path)
        return env

    # -- bookkeeping --------------------------------------------------------

    def shots_fired(self, index: int = 0) -> int:
        """How many times plan entry ``index`` has fired (token files)."""
        fired = 0
        while Path(f"{self.path}.fired.{index}.{fired}").exists():
            fired += 1
        return fired
