"""Differential paper-invariant tests (tiny scale, full benchmark set).

Pins the *directional* claims of the paper as inequalities over real
simulation runs, so a timing-model refactor that silently inverts a
headline conclusion fails loudly:

* the 4-way out-of-order processor is never slower than the 1-way
  in-order baseline, on any benchmark, scalar or VIS (Section 3);
* VIS variants always retire fewer instructions than their scalar
  counterparts (Section 5, Figure 2);
* software prefetching never *increases* the L1-miss stall time on the
  nine Figure 3 benchmarks (Section 4.2) — asserted with the paper's
  full-size caches (prefetching into the scaled-down tiny caches
  pollutes them, which is physically sensible but not the paper's
  configuration);
* every run in the grid passes the attribution audit with zero
  divergences.

Everything here is ``slow``: it simulates the full 12-benchmark grid.
"""

import pytest

from repro.cpu.config import ProcessorConfig
from repro.experiments.runner import RunCache
from repro.mem.config import MemoryConfig
from repro.workloads.base import Variant
from repro.workloads.params import TINY_SCALE
from repro.workloads.suite import PREFETCH_NAMES, names

ALL_BENCHMARKS = tuple(names())

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def cache():
    """One audited RunCache for the whole module: every simulated
    point is cross-checked against the event-stream recomputation."""
    return RunCache(scale=TINY_SCALE, validate=False, audit=True)


@pytest.fixture(scope="module")
def tiny_mem():
    return TINY_SCALE.memory_config()


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
@pytest.mark.parametrize("variant", [Variant.SCALAR, Variant.VIS])
def test_ooo_never_slower_than_inorder(cache, tiny_mem, name, variant):
    """ILP is never harmful: the 4-way OoO config beats (or ties) the
    1-way in-order baseline on every benchmark and variant."""
    inorder = cache.run(
        name, variant, ProcessorConfig.inorder_1way(), tiny_mem
    )
    ooo = cache.run(name, variant, ProcessorConfig.ooo_4way(), tiny_mem)
    assert ooo.cycles <= inorder.cycles, (
        f"{name}[{variant.value}]: ooo_4way took {ooo.cycles} cycles "
        f"vs inorder_1way {inorder.cycles}"
    )


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_vis_retires_fewer_instructions(cache, tiny_mem, name):
    """SIMD packing always shrinks the dynamic instruction count
    (Figure 2's defining property)."""
    scalar = cache.run(
        name, Variant.SCALAR, ProcessorConfig.ooo_4way(), tiny_mem
    )
    vis = cache.run(name, Variant.VIS, ProcessorConfig.ooo_4way(), tiny_mem)
    assert vis.instructions <= scalar.instructions, (
        f"{name}: VIS retired {vis.instructions} > scalar "
        f"{scalar.instructions}"
    )
    assert vis.category_counts["VIS"] > 0
    assert scalar.category_counts.get("VIS", 0) == 0


@pytest.mark.parametrize("name", PREFETCH_NAMES)
def test_prefetch_never_increases_miss_stall(cache, name):
    """With the paper's full-size caches, adding software prefetch
    never increases L1-miss stall time on any Figure 3 benchmark."""
    mem = MemoryConfig()  # full-size caches — see module docstring
    vis = cache.run(name, Variant.VIS, ProcessorConfig.ooo_4way(), mem)
    pf = cache.run(
        name, Variant.VIS_PREFETCH, ProcessorConfig.ooo_4way(), mem
    )
    assert pf.l1_miss_stall <= vis.l1_miss_stall, (
        f"{name}: prefetch raised L1-miss stall "
        f"{vis.l1_miss_stall} -> {pf.l1_miss_stall}"
    )
    assert vis.memory.prefetches == 0
    assert pf.memory.prefetches > 0
    # prefetch classification conserves
    m = pf.memory
    assert (
        m.prefetch_useful + m.prefetch_late + m.prefetch_redundant
        <= m.prefetches
    )
