"""Persistent simulation-result cache correctness.

What must hold (ISSUE satellite): content-key changes on *any* config
field miss; corrupted/truncated records are ignored and rewritten, not
fatal; disabling the cache bypasses reads and writes; the version
stamp invalidates wholesale.
"""

import dataclasses
import json
import os

import pytest

from repro.analyze import ANALYZER_VERSION
from repro.cpu.config import ProcessorConfig
from repro.mem.config import MemoryConfig
from repro.experiments.parallel import (
    CACHE_FORMAT_VERSION,
    DiskCache,
    ParallelRunner,
    SimPoint,
)
from repro.workloads.base import Variant
from repro.workloads.params import TINY_SCALE
from repro.workloads.suite import REGISTRY_VERSION


def _point(**overrides):
    fields = dict(
        benchmark="addition",
        variant=Variant.SCALAR,
        cpu=ProcessorConfig.ooo_4way(),
        mem=TINY_SCALE.memory_config(),
        scale=TINY_SCALE,
    )
    fields.update(overrides)
    return SimPoint(**fields)


@pytest.fixture(scope="module")
def baseline_stats():
    """One real simulated point (module-cached: simulate once)."""
    runner = ParallelRunner(scale=TINY_SCALE, jobs=1)
    return runner.run_points([_point()])[0]


class TestContentKey:
    def test_stable_across_instances(self):
        assert _point().content_key() == _point().content_key()

    def test_benchmark_and_variant_change_key(self):
        base = _point().content_key()
        assert _point(benchmark="thresh").content_key() != base
        assert _point(variant=Variant.VIS).content_key() != base

    @pytest.mark.parametrize(
        "field", [f.name for f in dataclasses.fields(ProcessorConfig)]
    )
    def test_every_processor_field_changes_key(self, field):
        cpu = ProcessorConfig.ooo_4way()
        value = getattr(cpu, field)
        bumped = "x" + value if isinstance(value, str) else value + 1
        if isinstance(value, bool):
            bumped = not value
        changed = dataclasses.replace(cpu, **{field: bumped})
        assert _point(cpu=changed).content_key() != _point().content_key()

    @pytest.mark.parametrize(
        "field",
        ["line_size", "l1_size", "l1_assoc", "l1_hit_cycles", "l2_size",
         "l2_mshrs", "mem_latency_cycles", "mem_banks"],
    )
    def test_memory_fields_change_key(self, field):
        # paper-default geometry: roomy enough that doubling any of the
        # size/assoc knobs keeps the config valid
        mem = MemoryConfig()
        doubled = field in ("line_size", "l1_size", "l1_assoc", "l2_size")
        value = getattr(mem, field) * 2 if doubled else getattr(mem, field) + 1
        changed = dataclasses.replace(mem, **{field: value})
        assert _point(mem=changed).content_key() != \
            _point(mem=mem).content_key()

    @pytest.mark.parametrize(
        "field", ["factor", "kernel_width", "dotprod_length", "pf_distance"]
    )
    def test_scale_fields_change_key(self, field):
        scale = dataclasses.replace(
            TINY_SCALE, **{field: getattr(TINY_SCALE, field) + 16}
        )
        assert _point(scale=scale).content_key() != _point().content_key()

    def test_registry_version_in_key_material(self):
        assert _point().describe()["registry_version"] == REGISTRY_VERSION

    def test_analyzer_version_in_key_material(self):
        assert _point().describe()["analyzer_version"] == ANALYZER_VERSION


class TestDiskCache:
    def test_round_trip(self, tmp_path, baseline_stats):
        cache = DiskCache(tmp_path)
        key = _point().content_key()
        assert cache.load(key) is None
        cache.store(key, baseline_stats, point=_point(), elapsed=0.5)
        loaded = cache.load(key)
        assert loaded == baseline_stats
        assert loaded.memory.load_miss_overlap == \
            baseline_stats.memory.load_miss_overlap  # int keys restored

    def test_atomic_store_leaves_no_temp_files(self, tmp_path, baseline_stats):
        cache = DiskCache(tmp_path)
        cache.store(_point().content_key(), baseline_stats)
        assert not list(tmp_path.glob("*.tmp"))

    def test_corrupted_record_ignored_and_rewritten(
        self, tmp_path, baseline_stats
    ):
        cache = DiskCache(tmp_path)
        key = _point().content_key()
        cache.store(key, baseline_stats)
        cache.path_for(key).write_text("{this is not json")
        assert cache.load(key) is None  # not an exception
        cache.store(key, baseline_stats)
        assert cache.load(key) == baseline_stats

    def test_truncated_record_ignored(self, tmp_path, baseline_stats):
        cache = DiskCache(tmp_path)
        key = _point().content_key()
        path = cache.store(key, baseline_stats)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.load(key) is None

    def test_wrong_key_record_ignored(self, tmp_path, baseline_stats):
        """A record whose embedded key mismatches its filename (e.g. a
        manually copied file) is treated as a miss."""
        cache = DiskCache(tmp_path)
        other = _point(benchmark="thresh").content_key()
        cache.store(other, baseline_stats)
        key = _point().content_key()
        cache.path_for(other).rename(cache.path_for(key))
        assert cache.load(key) is None

    def test_version_stamp_invalidates_wholesale(self, tmp_path, baseline_stats):
        cache = DiskCache(tmp_path)
        key = _point().content_key()
        cache.store(key, baseline_stats)
        assert len(cache) == 1
        # a registry bump (new benchmark codegen) drops every record
        newer = DiskCache(tmp_path, registry_version=REGISTRY_VERSION + 1)
        assert len(newer) == 0
        assert newer.load(key) is None
        stamp = (tmp_path / DiskCache.STAMP_NAME).read_text().strip()
        assert stamp == (
            f"{CACHE_FORMAT_VERSION}.{REGISTRY_VERSION + 1}.{ANALYZER_VERSION}"
        )

    def test_analyzer_bump_invalidates_wholesale(
        self, tmp_path, baseline_stats
    ):
        """A gate-semantics change re-verifies cached points instead of
        silently reusing records from an older analyzer."""
        cache = DiskCache(tmp_path)
        key = _point().content_key()
        cache.store(key, baseline_stats)
        newer = DiskCache(tmp_path, analyzer_version=ANALYZER_VERSION + 1)
        assert len(newer) == 0
        assert newer.load(key) is None

    def test_record_is_self_describing(self, tmp_path, baseline_stats):
        cache = DiskCache(tmp_path)
        point = _point()
        path = cache.store(point.content_key(), baseline_stats, point=point)
        record = json.loads(path.read_text())
        assert record["point"]["benchmark"] == "addition"
        assert record["point"]["scale"] == TINY_SCALE.to_dict()


class TestRunnerCacheBehaviour:
    def test_warm_cache_skips_simulation(self, tmp_path):
        cache = DiskCache(tmp_path)
        cold = ParallelRunner(scale=TINY_SCALE, jobs=1, cache=cache)
        first = cold.run_points([_point()])
        assert (cold.simulated, cold.cache_hits) == (1, 0)
        warm = ParallelRunner(scale=TINY_SCALE, jobs=1, cache=cache)
        second = warm.run_points([_point()])
        assert (warm.simulated, warm.cache_hits) == (0, 1)
        assert first[0] == second[0]

    def test_cached_stats_are_actually_read(self, tmp_path, baseline_stats):
        """Prove hits come from disk: poison the record, observe the
        poisoned value served."""
        cache = DiskCache(tmp_path)
        key = _point().content_key()
        poisoned = dataclasses.replace(baseline_stats, cycles=123456789)
        cache.store(key, poisoned)
        runner = ParallelRunner(scale=TINY_SCALE, jobs=1, cache=cache)
        assert runner.run_points([_point()])[0].cycles == 123456789

    def test_no_cache_bypasses_reads_and_writes(self, tmp_path, baseline_stats):
        cache = DiskCache(tmp_path)
        poisoned = dataclasses.replace(baseline_stats, cycles=123456789)
        cache.store(_point().content_key(), poisoned)
        runner = ParallelRunner(scale=TINY_SCALE, jobs=1, cache=None)
        stats = runner.run_points([_point()])[0]
        assert stats.cycles != 123456789      # read bypassed
        assert stats == baseline_stats
        record = json.loads(cache.path_for(_point().content_key()).read_text())
        assert record["stats"]["cycles"] == 123456789  # write bypassed

    def test_config_change_misses(self, tmp_path):
        cache = DiskCache(tmp_path)
        runner = ParallelRunner(scale=TINY_SCALE, jobs=1, cache=cache)
        runner.run_points([_point()])
        changed = dataclasses.replace(
            ProcessorConfig.ooo_4way(), window_size=32
        )
        runner.run_points([_point(cpu=changed)])
        assert runner.simulated == 2  # second point was not served stale


def _race_fill(cache_dir, key, counter_dir, barrier, results):
    """One contender in the cross-process fill race (run in a child
    process): claim-or-wait, ``compute`` = create a token file + store
    a recognizable record.  Appends (pid, source) to ``results``."""
    import dataclasses as _dc
    import os
    import tempfile as _tf

    from repro.experiments.parallel import DiskCache as _DiskCache

    cache = _DiskCache(cache_dir)
    barrier.wait()  # maximize the O_EXCL collision window
    claim = cache.try_claim(key)
    if claim is None:
        stats = cache.wait_for(key, timeout=30.0)
        assert stats is not None, "waiter timed out without a record"
        results.append((os.getpid(), "waited"))
        return
    with claim:
        # "compute": leave a token proving this process did the work
        fd, tok = _tf.mkstemp(dir=str(counter_dir), prefix="computed-")
        os.close(fd)
        from repro.experiments.parallel import ParallelRunner

        runner = ParallelRunner(scale=TINY_SCALE, jobs=1)
        stats = runner.run_points([_point()])[0]
        cache.store(key, _dc.replace(stats, cycles=424242))
    results.append((os.getpid(), "computed"))


class TestFillClaims:
    """Cross-process advisory locks around cache fills: two
    servers/workers racing one key must not double-compute (and records
    stay atomic regardless — the claim is advisory, never load-bearing
    for integrity)."""

    KEY = "k" * 64

    def test_claim_is_exclusive_then_released(self, tmp_path):
        cache = DiskCache(tmp_path)
        claim = cache.try_claim(self.KEY)
        assert claim is not None and not claim.degraded
        assert cache.try_claim(self.KEY) is None  # held
        claim.release()
        second = cache.try_claim(self.KEY)  # reusable after release
        assert second is not None
        second.release()
        assert cache.claims == 2

    def test_context_manager_releases_on_error(self, tmp_path):
        cache = DiskCache(tmp_path)
        with pytest.raises(RuntimeError):
            with cache.try_claim(self.KEY):
                raise RuntimeError("fill blew up")
        assert cache.try_claim(self.KEY) is not None  # not wedged

    def test_stale_claim_is_broken(self, tmp_path):
        """A claim whose holder was SIGKILLed (never released) must not
        wedge the key forever: past ``stale_after`` the next claimant
        breaks it and computes."""
        cache = DiskCache(tmp_path)
        cache.try_claim(self.KEY)  # orphaned on purpose
        past = __import__("time").time() - 120.0
        os.utime(cache.lock_path(self.KEY), (past, past))
        claim = cache.try_claim(self.KEY, stale_after=60.0)
        assert claim is not None
        assert cache.stale_claims_broken == 1
        claim.release()

    def test_fresh_claim_is_not_broken(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.try_claim(self.KEY)
        assert cache.try_claim(self.KEY, stale_after=60.0) is None
        assert cache.stale_claims_broken == 0

    def _plant_foreign_claim(self, cache, pid) -> None:
        lock = cache.lock_path(self.KEY)
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.write_text(
            json.dumps({"pid": pid, "time": __import__("time").time()}),
            encoding="utf-8",
        )

    def test_dead_holder_claim_is_broken_immediately(self, tmp_path):
        """A claim naming a pid that no longer exists (its holder was
        SIGKILLed) is broken right away — no 10-minute stale wait for a
        restarted server."""
        import subprocess
        import sys

        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()  # reaped: the pid provably does not exist any more
        cache = DiskCache(tmp_path)
        self._plant_foreign_claim(cache, proc.pid)
        assert cache.claim_holder_dead(self.KEY)
        claim = cache.try_claim(self.KEY, stale_after=3600.0)
        assert claim is not None
        assert cache.stale_claims_broken == 1
        claim.release()
        # wait_for sees through a dead holder the same way
        self._plant_foreign_claim(cache, proc.pid)
        assert cache.wait_for(self.KEY, timeout=30.0) is None

    def test_live_foreign_holder_is_respected(self, tmp_path):
        """pid 1 is alive but not ours (EPERM): the claim must hold."""
        cache = DiskCache(tmp_path)
        self._plant_foreign_claim(cache, 1)
        assert not cache.claim_holder_dead(self.KEY)
        assert cache.try_claim(self.KEY, stale_after=3600.0) is None
        assert cache.stale_claims_broken == 0

    def test_unreadable_claim_payload_reads_as_alive(self, tmp_path):
        cache = DiskCache(tmp_path)
        lock = cache.lock_path(self.KEY)
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.write_text("not json", encoding="utf-8")
        assert not cache.claim_holder_dead(self.KEY)

    def test_unwritable_lock_dir_degrades_to_computing(self, tmp_path):
        """Liveness over dedup: if the lock directory cannot be created
        the claim is granted unbacked, so fills still happen."""
        root = tmp_path / "cache"
        cache = DiskCache(root)
        (root / "locks").write_text("a file where the dir should be")
        claim = cache.try_claim(self.KEY)
        assert claim is not None and claim.degraded
        claim.release()  # no-op, no crash

    def test_wait_for_returns_none_when_claim_released_empty(self, tmp_path):
        """A holder that releases without storing (its fill failed)
        unblocks waiters with ``None`` so they claim and compute."""
        cache = DiskCache(tmp_path)
        claim = cache.try_claim(self.KEY)
        claim.release()
        assert cache.wait_for(self.KEY, timeout=5.0) is None

    def test_wait_for_sees_record_land(self, tmp_path, baseline_stats):
        import threading

        cache = DiskCache(tmp_path)
        claim = cache.try_claim(self.KEY)

        def fill():
            cache.store(self.KEY, baseline_stats)
            claim.release()

        t = threading.Timer(0.2, fill)
        t.start()
        try:
            got = cache.wait_for(self.KEY, timeout=10.0)
        finally:
            t.join()
        assert got == baseline_stats

    def test_concurrent_processes_compute_exactly_once(self, tmp_path):
        """The satellite's regression: N processes race one cold key;
        exactly one simulates, every process ends with the same record,
        and the record is not torn."""
        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        manager = ctx.Manager()
        results = manager.list()
        barrier = ctx.Barrier(4)
        counter_dir = tmp_path / "tokens"
        counter_dir.mkdir()
        cache_dir = tmp_path / "cache"
        key = _point().content_key()
        procs = [
            ctx.Process(
                target=_race_fill,
                args=(str(cache_dir), key, str(counter_dir), barrier, results),
            )
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        outcomes = sorted(source for _pid, source in results)
        assert outcomes.count("computed") == 1, outcomes
        assert outcomes.count("waited") == 3, outcomes
        assert len(list(counter_dir.glob("computed-*"))) == 1
        # the one stored record is intact and served to a fresh reader
        stats = DiskCache(cache_dir).load(key)
        assert stats is not None and stats.cycles == 424242
        # no claim survives the race
        assert not DiskCache(cache_dir).lock_path(key).exists()


class TestCliIntegration:
    def test_no_cache_flag_creates_nothing(self, tmp_path, capsys):
        from repro.experiments.cli import main

        cache_dir = tmp_path / "simcache"
        code = main([
            "figure2", "--scale", "tiny", "--benchmarks", "addition",
            "--out", str(tmp_path / "out"), "--no-cache",
            "--cache-dir", str(cache_dir), "--jobs", "1", "--quiet",
        ])
        assert code == 0
        # no simulation-result records or version stamp...
        assert not list(cache_dir.glob("*.json"))
        assert not (cache_dir / "CACHE_VERSION").exists()
        # ...but static-verification verdicts still persist: a gate
        # verdict cannot affect measured numbers, so --no-cache timing
        # re-runs skip the analysis while re-simulating every point
        assert list((cache_dir / "analysis").glob("*.json"))

    def test_cache_dir_flag_populates(self, tmp_path, capsys):
        from repro.experiments.cli import main

        cache_dir = tmp_path / "simcache"
        args = [
            "figure2", "--scale", "tiny", "--benchmarks", "addition",
            "--out", str(tmp_path / "out"), "--cache-dir", str(cache_dir),
            "--jobs", "1", "--quiet",
        ]
        assert main(args) == 0
        records = list(cache_dir.glob("*.json"))
        assert len(records) == 2  # addition x {scalar, vis} @ ooo-4way
        first = (tmp_path / "out" / "figure2_tiny.csv").read_text()
        # warm rerun: identical CSV from a fully cached grid
        assert main(args) == 0
        assert (tmp_path / "out" / "figure2_tiny.csv").read_text() == first
