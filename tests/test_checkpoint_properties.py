"""Property-based (hypothesis) tests for cycle-level checkpoint/restore.

The headline contract of :mod:`repro.checkpoint` is *byte-identical
resume*: interrupting a simulation at any chunk boundary, serializing
the whole stack through JSON (exactly what a snapshot file does),
restoring into **fresh** objects and continuing must produce the same
:class:`~repro.cpu.stats.ExecutionStats` — bit for bit — as the
uninterrupted run, on both processor models, with and without a tracer
attached, for arbitrary random programs.

Hypothesis hunts the state a snapshot forgets: a branch-predictor
counter, an MSHR in flight, a dirty cache line, a half-charged stall.
Any such omission shifts at least one cycle or one stall fraction and
the dict comparison catches it.
"""

import json

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.checkpoint import build_state, restore_state
from repro.cpu.pipeline import make_model
from repro.mem.system import MemorySystem
from repro.sim.machine import Machine
from repro.sim.static_info import StaticProgramInfo
from repro.trace import Tracer, audit_run

from .test_audit_properties import (
    BUF,
    CONFIGS,
    MAX_OFF,
    STRIDE,
    _mem,
    _op,
    build_random_program,
)

#: small chunks so even tiny random programs cross several boundaries
CHUNK = 16

#: like test_audit_properties.program_shapes but with a trip-count
#: floor, so every program spans multiple CHUNK-sized trace chunks
long_shapes = st.tuples(
    st.lists(_op, min_size=2, max_size=12),   # loop body
    st.integers(8, (BUF - MAX_OFF - 8) // STRIDE),  # trip count (>= 8)
    st.integers(0, 2**31),                    # data seed
)


def _fresh_stack(program, cpu, traced):
    machine = Machine(program)
    machine.reset()
    info = StaticProgramInfo(program)
    tracer = Tracer(info, cpu.issue_width) if traced else None
    memory = MemorySystem(_mem(), tracer=tracer)
    model = make_model(info, cpu, memory, tracer=tracer)
    model.begin("prop")
    return machine, model, memory, tracer


def _run(program, cpu, traced, snap_at=None):
    """Run to completion.  Returns ``(stats, machine, boundaries,
    state_json)`` where ``state_json`` is the serialized whole-stack
    state captured at in-loop chunk boundary ``snap_at`` (1-based)."""
    machine, model, memory, tracer = _fresh_stack(program, cpu, traced)
    state_json = None
    boundary = 0
    for chunk in machine.run(chunk_size=CHUNK, observer=tracer):
        model.feed_chunk(chunk)
        if machine.run_pc < 0:
            break
        boundary += 1
        if boundary == snap_at:
            state_json = json.dumps(
                build_state(machine, model, memory, tracer)
            )
    stats = model.finish()
    stats.check_consistency()
    if tracer is not None:
        audit_run(stats, tracer).raise_if_failed()
    return stats, machine, boundary, state_json


def _resume_from(program, cpu, traced, state_json):
    """Restore a JSON-round-tripped snapshot into a fresh stack and run
    it to completion (audited when traced)."""
    machine, model, memory, tracer = _fresh_stack(program, cpu, traced)
    restore_state(json.loads(state_json), machine, model, memory, tracer)
    for chunk in machine.run(chunk_size=CHUNK, observer=tracer, resume=True):
        model.feed_chunk(chunk)
        if machine.run_pc < 0:
            break
    stats = model.finish()
    stats.check_consistency()
    if tracer is not None:
        audit_run(stats, tracer).raise_if_failed()
    return stats, machine


class TestSnapshotRestoreIdentity:
    @given(long_shapes, st.sampled_from(CONFIGS), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_resume_is_byte_identical(self, shape, make_config, snap_seed):
        """Snapshot at a random chunk boundary -> JSON round trip ->
        fresh stack -> continue == straight-through run, exactly."""
        program = build_random_program(*shape)
        cpu = make_config()
        straight, _m, boundaries, _ = _run(program, cpu, False)
        assume(boundaries > 0)
        snap_at = 1 + snap_seed % boundaries
        _again, _m, _b, state_json = _run(program, cpu, False, snap_at)
        assert state_json is not None
        resumed, _machine = _resume_from(program, cpu, False, state_json)
        assert resumed.to_dict() == straight.to_dict()

    @given(long_shapes, st.sampled_from(CONFIGS), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_resume_is_audit_clean_with_tracer(
        self, shape, make_config, snap_seed
    ):
        """Same identity with a tracer attached: the resumed run's
        event-stream recomputation must agree exactly (audit passes in
        both helpers) and produce identical stats."""
        program = build_random_program(*shape)
        cpu = make_config()
        straight, _m, boundaries, _ = _run(program, cpu, True)
        assume(boundaries > 0)
        snap_at = 1 + snap_seed % boundaries
        _again, _m, _b, state_json = _run(program, cpu, True, snap_at)
        assert state_json is not None
        resumed, _machine = _resume_from(program, cpu, True, state_json)
        assert resumed.to_dict() == straight.to_dict()

    @given(long_shapes, st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_resumed_memory_image_matches(self, shape, snap_seed):
        """The functional machine's final memory image after a resumed
        run equals the straight-through image (architectural state, not
        just timing, survives the round trip)."""
        program = build_random_program(*shape)
        cpu = CONFIGS[1]()  # ooo_4way
        _stats, machine_full, boundaries, _ = _run(program, cpu, False)
        assume(boundaries > 0)
        snap_at = 1 + snap_seed % boundaries
        _again, _m, _b, state_json = _run(program, cpu, False, snap_at)
        assert state_json is not None
        _rstats, machine_resumed = _resume_from(
            program, cpu, False, state_json
        )
        assert bytes(machine_resumed.memory) == bytes(machine_full.memory)
        assert (
            machine_resumed.instruction_count == machine_full.instruction_count
        )
