"""Timing-model tests: stall attribution, ILP ordering invariants."""

import pytest

from repro.asm import ProgramBuilder
from repro.cpu import (
    AgreePredictor,
    ProcessorConfig,
    RetireUnit,
    ReturnAddressStack,
    SC_FU,
    SC_L1MISS,
)
from repro.experiments.runner import simulate_program
from repro.mem import MemoryConfig


def make_stream_program(n=4096):
    b = ProgramBuilder("stream")
    b.buffer("src", n, data=bytes(i & 0xFF for i in range(n)))
    b.buffer("dst", n)
    ps, pd = b.iregs(2)
    b.la(ps, "src")
    b.la(pd, "dst")
    with b.loop(0, n):
        with b.scratch(iregs=1) as t:
            b.ldb(t, ps)
            b.add(t, t, 1)
            b.stb(t, pd)
        b.add(ps, ps, 1)
        b.add(pd, pd, 1)
    return b.build()


def make_dependent_chain_program(length=2000):
    """A serial add chain: no ILP at all."""
    b = ProgramBuilder("chain")
    b.buffer("out", 8)
    acc = b.ireg()
    b.li(acc, 0)
    with b.loop(0, length):
        b.add(acc, acc, 1)
        b.add(acc, acc, 2)
        b.add(acc, acc, 3)
    with b.scratch(iregs=1) as p:
        b.la(p, "out")
        b.stx(acc, p)
    return b.build()


def make_independent_program(length=2000):
    """Four independent accumulators: width-limited, not dependence-limited."""
    b = ProgramBuilder("independent")
    b.buffer("out", 8)
    accs = b.iregs(4)
    for a in accs:
        b.li(a, 0)
    with b.loop(0, length):
        for a in accs:
            b.add(a, a, 1)
    with b.scratch(iregs=1) as p:
        b.la(p, "out")
        b.stx(accs[0], p)
    return b.build()


MEM = MemoryConfig().scaled(64)


def run(program, config):
    stats, _ = simulate_program(program, config, MEM)
    return stats


class TestOrderingInvariants:
    def test_wider_issue_is_not_slower(self):
        program = make_independent_program()
        one = run(program, ProcessorConfig.inorder_1way())
        four = run(program, ProcessorConfig.inorder_4way())
        assert four.cycles < one.cycles

    def test_out_of_order_is_not_slower_than_in_order(self):
        program = make_stream_program()
        io = run(program, ProcessorConfig.inorder_4way())
        ooo = run(program, ProcessorConfig.ooo_4way())
        assert ooo.cycles <= io.cycles

    def test_dependent_chain_limits_ilp(self):
        # the serial 3-add chain caps OoO at ~3 cycles/iteration,
        # while independent work reaches the 2-ALU throughput bound
        chain = run(make_dependent_chain_program(), ProcessorConfig.ooo_4way())
        chain_1w = run(make_dependent_chain_program(), ProcessorConfig.inorder_1way())
        independent = run(make_independent_program(), ProcessorConfig.ooo_4way())
        independent_1w = run(make_independent_program(), ProcessorConfig.inorder_1way())
        chain_speedup = chain_1w.cycles / chain.cycles
        independent_speedup = independent_1w.cycles / independent.cycles
        assert chain_speedup < independent_speedup
        assert chain.cycles >= 3 * 2000  # the dependence chain is a floor

    def test_independent_work_exploits_width(self):
        program = make_independent_program()
        one = run(program, ProcessorConfig.inorder_1way())
        ooo = run(program, ProcessorConfig.ooo_4way())
        # 6 integer ops/iteration on 2 ALUs vs 1: ~2x
        assert one.cycles / ooo.cycles > 1.9


class TestComponents:
    def test_components_partition_cycles(self):
        for config in (ProcessorConfig.inorder_4way(), ProcessorConfig.ooo_4way()):
            stats = run(make_stream_program(), config)
            stats.check_consistency()
            total = sum(stats.components().values())
            assert abs(total - stats.cycles) <= 1.0

    def test_streaming_kernel_has_memory_stall(self):
        stats = run(make_stream_program(), ProcessorConfig.ooo_4way())
        assert stats.l1_miss_stall > 0
        assert stats.memory is not None
        assert stats.memory.l1_misses > 0

    def test_instruction_counts_match_trace(self):
        program = make_stream_program(512)
        stats = run(program, ProcessorConfig.ooo_4way())
        assert stats.instructions == sum(stats.category_counts.values())


class TestRetireUnit:
    def test_back_to_back_full_throughput(self):
        unit = RetireUnit(width=4)
        for i in range(16):
            unit.retire(0, SC_FU)
        assert unit.total_cycles == 4
        assert unit.busy_cycles == 4.0
        assert sum(unit.stalls) == 0

    def test_gap_attributed_to_stalling_class(self):
        unit = RetireUnit(width=4)
        unit.retire(0, SC_FU)
        unit.retire(10, SC_L1MISS)
        assert unit.stalls[SC_L1MISS] == pytest.approx(3 / 4 + 9)
        assert unit.stalls[SC_FU] == 0

    def test_accounting_is_complete(self):
        import random

        rng = random.Random(7)
        unit = RetireUnit(width=4)
        cycle = 0
        for _ in range(500):
            cycle += rng.choice([0, 0, 0, 1, 3, 12])
            unit.retire(cycle, rng.randrange(4))
        total = unit.busy_cycles + sum(unit.stalls)
        assert abs(total - unit.total_cycles) <= 1.0


class TestBranchPredictor:
    def test_agree_predictor_learns_bias_violations(self):
        predictor = AgreePredictor(size=16)
        # branch hinted taken but always not-taken: after warmup the
        # agree counter flips and predictions become correct
        miss = [predictor.predict_and_update(5, True, False) for _ in range(10)]
        assert miss[0] is True
        assert miss[-1] is False

    def test_agreeing_branch_never_mispredicts(self):
        predictor = AgreePredictor(size=16)
        for _ in range(50):
            assert not predictor.predict_and_update(3, True, True)
        assert predictor.mispredict_rate == 0.0

    def test_power_of_two_size_required(self):
        with pytest.raises(ValueError):
            AgreePredictor(size=100)

    def test_ras_matches_calls(self):
        ras = ReturnAddressStack(size=2)
        ras.push(10)
        ras.push(20)
        assert ras.pop(20) is False
        assert ras.pop(10) is False
        assert ras.pop(99) is True          # underflow

    def test_ras_overflow_wraps(self):
        ras = ReturnAddressStack(size=2)
        for target in (1, 2, 3):
            ras.push(target)
        assert ras.overflowed == 1
        assert ras.pop(3) is False
        assert ras.pop(2) is False
        assert ras.pop(1) is True           # lost to the overflow


class TestMispredictPenalty:
    def test_unpredictable_branches_cost_cycles(self):
        def build(pattern):
            b = ProgramBuilder()
            data = bytes(pattern)
            b.buffer("data", len(data), data=data)
            p, t, acc = b.iregs(3)
            b.la(p, "data")
            b.li(acc, 0)
            with b.loop(0, len(data)):
                skip = b.label()
                b.ldb(t, p)
                b.beq(t, 0, skip, hint=False)
                b.add(acc, acc, 1)
                b.bind(skip)
                b.add(p, p, 1)
            return b.build()

        import random

        rng = random.Random(3)
        predictable = build([1] * 2000)
        random_pattern = build([rng.randrange(2) for _ in range(2000)])
        cfg = ProcessorConfig.ooo_4way()
        fast = run(predictable, cfg)
        slow = run(random_pattern, cfg)
        assert slow.mispredict_rate > 0.2
        assert fast.mispredict_rate < 0.02
        assert slow.cycles > fast.cycles
