"""Tests for ``scripts/lint_async.py`` — the no-blocking-calls-in-async
lint that gates ``src/repro/serve/`` in CI.

The linter is exercised on synthetic sources (flagging, innermost-frame
logic, waivers, stale waivers) and then on the real serve tree, which
must be clean: a regression that introduces ``time.sleep`` into an
async handler fails here before it fails in CI.
"""

import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from lint_async import (  # noqa: E402
    CODE_IO,
    CODE_SLEEP,
    CODE_STALE,
    CODE_SUBPROC,
    lint_paths,
    lint_source,
)


def _lint(code: str):
    return lint_source(textwrap.dedent(code))


def _errors(findings):
    return [f for f in findings if not f.waived]


class TestFlagging:
    def test_time_sleep_in_async_def(self):
        findings = _lint(
            """
            import time
            async def handler():
                time.sleep(1)
            """
        )
        assert [f.code for f in _errors(findings)] == [CODE_SLEEP]

    def test_subprocess_in_async_def(self):
        findings = _lint(
            """
            import subprocess
            async def handler():
                subprocess.run(["ls"])
                subprocess.check_output(["ls"])
            """
        )
        assert [f.code for f in _errors(findings)] == [
            CODE_SUBPROC, CODE_SUBPROC,
        ]

    def test_sync_file_io_in_async_def(self):
        findings = _lint(
            """
            import os
            async def handler(path):
                with open(path) as fh:
                    data = fh.read()
                text = path.read_text()
                os.fsync(3)
                os.replace(path, path)
            """
        )
        assert [f.code for f in _errors(findings)] == [CODE_IO] * 4

    def test_asyncio_sleep_and_open_connection_not_flagged(self):
        findings = _lint(
            """
            import asyncio
            async def handler(host):
                await asyncio.sleep(1)
                r, w = await asyncio.open_connection(host, 1)
                r2, w2 = await asyncio.open_unix_connection(host)
            """
        )
        assert findings == []

    def test_sync_def_not_flagged(self):
        findings = _lint(
            """
            import time
            def helper():
                time.sleep(1)
                open("x")
            """
        )
        assert findings == []

    def test_nested_sync_def_inside_async_not_flagged(self):
        # a closure handed to run_in_executor is exactly where blocking
        # calls belong — only the innermost frame's kind counts
        findings = _lint(
            """
            import time
            async def handler(loop):
                def work():
                    time.sleep(1)
                    return open("x").read()
                return await loop.run_in_executor(None, work)
            """
        )
        assert findings == []

    def test_async_def_nested_inside_sync_def_is_flagged(self):
        findings = _lint(
            """
            import time
            def outer():
                async def inner():
                    time.sleep(1)
                return inner
            """
        )
        assert [f.code for f in _errors(findings)] == [CODE_SLEEP]


class TestWaivers:
    def test_waiver_demotes_finding(self):
        findings = _lint(
            """
            async def handler(path):
                data = path.read_text()  # async-waive(A-ASYNC-IO): startup, loop idle
            """
        )
        assert _errors(findings) == []
        assert len(findings) == 1
        assert findings[0].waived
        assert findings[0].reason == "startup, loop idle"

    def test_waiver_must_name_the_right_code(self):
        findings = _lint(
            """
            import time
            async def handler():
                time.sleep(1)  # async-waive(A-ASYNC-IO): wrong code
            """
        )
        # the sleep stays an error AND the mismatched waiver is stale
        codes = sorted(f.code for f in _errors(findings))
        assert codes == sorted([CODE_SLEEP, CODE_STALE])

    def test_stale_waiver_is_an_error(self):
        findings = _lint(
            """
            async def handler():
                return 1  # async-waive(A-ASYNC-IO): nothing here anymore
            """
        )
        assert [f.code for f in _errors(findings)] == [CODE_STALE]

    def test_multi_code_waiver(self):
        findings = _lint(
            """
            import time
            async def handler():
                time.sleep(open("x"))  # async-waive(A-ASYNC-SLEEP, A-ASYNC-IO): test fixture
            """
        )
        assert _errors(findings) == []
        assert all(f.waived for f in findings)


class TestServeTreeClean:
    def test_serve_layer_has_no_blocking_async_calls(self):
        serve = REPO_ROOT / "src" / "repro" / "serve"
        findings = lint_paths([serve])
        errors = _errors(findings)
        assert errors == [], (
            "blocking calls in async def bodies under src/repro/serve:\n"
            + "\n".join(f"{f.path}:{f.line}: {f.code} {f.call}" for f in errors)
        )


class TestCli:
    def test_main_exit_codes(self, tmp_path, capsys):
        from lint_async import main

        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time\nasync def f():\n    time.sleep(1)\n",
            encoding="utf-8",
        )
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "A-ASYNC-SLEEP" in out and "error" in out

        good = tmp_path / "good.py"
        good.write_text(
            "import asyncio\nasync def f():\n    await asyncio.sleep(1)\n",
            encoding="utf-8",
        )
        assert main([str(good)]) == 0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
