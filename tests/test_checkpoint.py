"""Cycle-level checkpoint/restore: snapshot files, resumable points,
kill-mid-point chaos, manifest compaction, GC, and the CLI surface.

The contract under test (see EXPERIMENTS.md "Checkpointing"): a
simulation killed at an arbitrary cycle and resumed from its newest
snapshot produces **byte-identical** stats — and therefore tables and
CSVs — to an uninterrupted run, including with ``--audit`` attached.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.checkpoint import (
    CheckpointError,
    CheckpointSession,
    list_snapshots,
    load_newest_valid,
    load_snapshot,
    write_snapshot,
)
from repro.checkpoint.snapshot import prune_snapshots
from repro.cpu.config import ProcessorConfig
from repro.experiments.cli import main
from repro.experiments.faults import RunManifest
from repro.experiments.gc import gc_cache
from repro.experiments.parallel import ParallelRunner, SimPoint
from repro.experiments.runner import simulate_program
from repro.sim.static_info import StaticProgramInfo
from repro.trace import RingBufferSink, Tracer
from repro.workloads.base import Variant
from repro.workloads.params import TINY_SCALE
from repro.workloads.suite import get
from tests.chaos import FaultPlan

REPO = Path(__file__).resolve().parents[1]
CONFIG = ProcessorConfig.inorder_1way()

SUBSET = ("addition", "thresh")


def _grid(benchmarks=SUBSET, variants=(Variant.SCALAR, Variant.VIS)):
    mem = TINY_SCALE.memory_config()
    return [
        SimPoint(name, variant, CONFIG, mem, TINY_SCALE)
        for name in benchmarks
        for variant in variants
    ]


def _fingerprint(stats_list):
    return [s.to_dict() for s in stats_list]


# ---------------------------------------------------------------------------
# Snapshot file format
# ---------------------------------------------------------------------------


class TestSnapshotFormat:
    META = {"point_key": "k", "model": "inorder"}

    def test_round_trip_and_ordering(self, tmp_path):
        p1 = write_snapshot(
            tmp_path, self.META, {"retired": 500, "cycles": 900},
            {"machine": {"regs": [1, 2]}, "hist": {"7": 3}},
        )
        p2 = write_snapshot(
            tmp_path, self.META, {"retired": 12000, "cycles": 30000},
            {"machine": {"regs": [3, 4]}},
        )
        assert list_snapshots(tmp_path) == [p1, p2]  # progress order
        meta, progress, payload = load_snapshot(p2)
        assert meta == self.META
        assert progress["retired"] == 12000
        assert "created" in progress
        assert payload == {"machine": {"regs": [3, 4]}}

    def test_tampered_payload_fails_checksum(self, tmp_path):
        path = write_snapshot(
            tmp_path, self.META, {"retired": 1, "cycles": 2}, {"x": 1}
        )
        record = json.loads(path.read_text())
        record["payload_json"] = record["payload_json"].replace("1", "2")
        path.write_text(json.dumps(record))
        with pytest.raises(CheckpointError, match="checksum"):
            load_snapshot(path)

    def test_torn_write_rejected(self, tmp_path):
        path = write_snapshot(
            tmp_path, self.META, {"retired": 1, "cycles": 2}, {"x": 1}
        )
        path.write_text(path.read_text()[:40])  # SIGKILL mid-write
        with pytest.raises(CheckpointError, match="JSON"):
            load_snapshot(path)

    def test_newest_valid_quarantines_and_falls_back(self, tmp_path):
        older = write_snapshot(
            tmp_path, self.META, {"retired": 100, "cycles": 5}, {"x": "old"}
        )
        newer = write_snapshot(
            tmp_path, self.META, {"retired": 200, "cycles": 9}, {"x": "new"}
        )
        newer.write_text("garbage")  # corrupt the newest
        session = CheckpointSession(tmp_path)
        found = load_newest_valid(session, self.META)
        assert found is not None
        name, payload = found
        assert name == older.name
        assert payload == {"x": "old"}
        assert session.snapshots_quarantined == 1
        assert (tmp_path / "quarantine" / newer.name).exists()

    def test_identity_mismatch_is_skipped_not_trusted(self, tmp_path):
        write_snapshot(
            tmp_path, self.META, {"retired": 100, "cycles": 5}, {"x": 1}
        )
        session = CheckpointSession(tmp_path)
        assert load_newest_valid(session, {"point_key": "other"}) is None
        assert session.snapshots_mismatched == 1
        # the mismatched file is left alone (another config may own it)
        assert len(list_snapshots(tmp_path)) == 1

    def test_prune_keeps_newest(self, tmp_path):
        paths = [
            write_snapshot(
                tmp_path, self.META, {"retired": r, "cycles": r}, {}
            )
            for r in (10, 20, 30)
        ]
        assert prune_snapshots(tmp_path, keep=2) == 1
        assert list_snapshots(tmp_path) == paths[1:]

    def test_session_rejects_nonpositive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointSession(tmp_path, interval=0)

    def test_tracer_with_extra_sink_not_checkpointable(self):
        program = get("addition").build(Variant.SCALAR, TINY_SCALE).program
        info = StaticProgramInfo(program)
        tracer = Tracer(info, 4, sinks=[RingBufferSink(8)])
        with pytest.raises(ValueError, match="sink"):
            tracer.snapshot()


# ---------------------------------------------------------------------------
# Checkpointed single runs
# ---------------------------------------------------------------------------


class TestCheckpointedRun:
    def _built(self):
        return get("addition").build(Variant.SCALAR, TINY_SCALE)

    def test_checkpointing_does_not_change_stats(self, tmp_path):
        built = self._built()
        mem = TINY_SCALE.memory_config()
        baseline, _ = simulate_program(built.program, CONFIG, mem, lint=False)
        session = CheckpointSession(tmp_path / "pt", interval=2000)
        stats, machine = simulate_program(
            built.program, CONFIG, mem, lint=False, checkpoint=session,
        )
        assert session.snapshots_written > 0
        assert session.resumed_from is None  # cold start
        assert stats.to_dict() == baseline.to_dict()
        built.validate(machine)
        # prune kept only the newest `keep`
        assert len(list_snapshots(tmp_path / "pt")) <= session.keep

    def test_interrupted_point_resumes_byte_identically(self, tmp_path):
        """Fail a run mid-point (after it snapshotted), then re-run:
        the retry restores mid-flight and the stats match an
        uninterrupted run exactly — with auditing attached."""
        built = self._built()
        mem = TINY_SCALE.memory_config()
        baseline, _ = simulate_program(
            built.program, CONFIG, mem, lint=False, audit=True,
        )
        session = CheckpointSession(
            tmp_path / "pt", interval=2000, label="victim"
        )
        plan = FaultPlan(tmp_path, [
            {"match": "ckpt:victim", "action": "error", "times": 1},
        ])
        with plan:
            with pytest.raises(RuntimeError, match="injected"):
                simulate_program(
                    built.program, CONFIG, mem, lint=False, audit=True,
                    checkpoint=session,
                )
        assert session.snapshots_written >= 1
        assert list_snapshots(tmp_path / "pt"), "snapshots survived the crash"
        resumed = CheckpointSession(
            tmp_path / "pt", interval=2000, label="victim"
        )
        stats, _machine = simulate_program(
            built.program, CONFIG, mem, lint=False, audit=True,
            checkpoint=resumed,
        )
        assert resumed.resumed_from is not None
        assert stats.to_dict() == baseline.to_dict()

    def test_snapshot_from_other_config_is_skipped(self, tmp_path):
        """A snapshot written under one processor config must never be
        restored into another: the second run cold-starts and still
        produces its own correct stats."""
        built = self._built()
        mem = TINY_SCALE.memory_config()
        first = CheckpointSession(tmp_path / "pt", interval=2000)
        simulate_program(
            built.program, CONFIG, mem, lint=False, checkpoint=first,
        )
        assert list_snapshots(tmp_path / "pt")
        other_cpu = ProcessorConfig.ooo_4way()
        baseline, _ = simulate_program(
            built.program, other_cpu, mem, lint=False,
        )
        second = CheckpointSession(tmp_path / "pt", interval=2000)
        stats, _m = simulate_program(
            built.program, other_cpu, mem, lint=False, checkpoint=second,
        )
        assert second.resumed_from is None
        assert second.snapshots_mismatched >= 1
        assert stats.to_dict() == baseline.to_dict()


# ---------------------------------------------------------------------------
# Chaos: SIGKILL mid-point, retry resumes from the snapshot
# ---------------------------------------------------------------------------


class TestKillResume:
    def test_killed_worker_retry_resumes_from_snapshot(self, tmp_path):
        """A worker is SIGKILLed right after persisting a snapshot; the
        rebuilt pool's retry restores mid-point (manifest records
        ``resumed_from``) and the grid's stats are byte-identical to a
        clean run."""
        clean = ParallelRunner(scale=TINY_SCALE, jobs=1).run_points(_grid())
        plan = FaultPlan(tmp_path, [
            {"match": "ckpt:addition[scalar]", "action": "kill", "times": 1},
        ])
        manifest = RunManifest(tmp_path / "manifest.jsonl")
        runner = ParallelRunner(
            scale=TINY_SCALE, jobs=2,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_interval=2000,
            manifest=manifest,
        )
        with plan:
            results = runner.run_points(_grid())
        manifest.close()
        assert plan.shots_fired(0) == 1, "the kill actually fired"
        assert runner.retried >= 1
        assert runner.checkpoint_resumes >= 1
        assert _fingerprint(results) == _fingerprint(clean)
        journal = (tmp_path / "manifest.jsonl").read_text()
        assert "resumed_from" in journal
        resumed_records = [
            json.loads(line) for line in journal.splitlines()
            if "resumed_from" in line
        ]
        assert any(
            r["resumed_from"].startswith("ckpt_") for r in resumed_records
        )

    def test_serial_timeout_retry_resumes(self, tmp_path):
        """With checkpointing armed the CLI opts timeouts into the
        retry budget; model that policy here: a point that hangs once
        (after snapshotting) is retried and the retry resumes."""
        from repro.experiments.faults import (
            STATUS_TIMEOUT,
            TRANSIENT_STATUSES,
            RetryPolicy,
        )

        clean = ParallelRunner(scale=TINY_SCALE, jobs=1).run_points(
            _grid(("addition",), (Variant.SCALAR,))
        )
        plan = FaultPlan(tmp_path, [
            {"match": "ckpt:addition[scalar]", "action": "hang", "times": 1},
        ])
        runner = ParallelRunner(
            scale=TINY_SCALE, jobs=1, point_timeout=1.0,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_interval=2000,
            retry=RetryPolicy(
                max_retries=2, base_delay=0.01,
                retry_statuses=TRANSIENT_STATUSES | {STATUS_TIMEOUT},
            ),
        )
        start = time.monotonic()
        with plan:
            results = runner.run_points(
                _grid(("addition",), (Variant.SCALAR,))
            )
        assert time.monotonic() - start < 60  # watchdog, not the hang
        assert runner.retried >= 1
        assert runner.checkpoint_resumes >= 1
        assert _fingerprint(results) == _fingerprint(clean)


# ---------------------------------------------------------------------------
# SIGKILL the whole process (subprocess): --resume + identical CSVs
# ---------------------------------------------------------------------------


class TestProcessKillResume:
    def _cli(self, out, extra=()):
        return [
            sys.executable, "-m", "repro.experiments.cli", "figure2",
            "--scale", "tiny", "--benchmarks", "addition",
            "--out", str(out), "--jobs", "1", "--quiet", "--audit",
            "--checkpoint-interval", "2000", *extra,
        ]

    def _env(self, plan=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        if plan is not None:
            env = plan.environ(env)
        return env

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        clean_out = tmp_path / "clean"
        kill_out = tmp_path / "killed"
        ref = subprocess.run(
            self._cli(clean_out), env=self._env(), cwd=REPO,
            capture_output=True, text=True, timeout=300,
        )
        assert ref.returncode == 0, ref.stderr
        plan = FaultPlan(tmp_path, [
            {"match": "ckpt:addition[scalar]", "action": "kill", "times": 1},
        ])
        killed = subprocess.run(
            self._cli(kill_out), env=self._env(plan), cwd=REPO,
            capture_output=True, text=True, timeout=300,
        )
        assert killed.returncode != 0, "the SIGKILL landed mid-grid"
        assert plan.shots_fired(0) == 1
        ckpt_root = kill_out / ".simcache" / "checkpoints"
        assert any(ckpt_root.rglob("ckpt_*.ckpt.json")), (
            "snapshots survived the kill"
        )
        resumed = subprocess.run(
            self._cli(kill_out, extra=("--resume",)), env=self._env(plan),
            cwd=REPO, capture_output=True, text=True, timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed mid-point" in resumed.stderr
        csv_ref = (clean_out / "figure2_tiny.csv").read_bytes()
        csv_resumed = (kill_out / "figure2_tiny.csv").read_bytes()
        assert csv_resumed == csv_ref
        journal = (kill_out / "run_manifest.jsonl").read_text()
        assert "resumed_from" in journal


# ---------------------------------------------------------------------------
# Run-manifest compaction
# ---------------------------------------------------------------------------


class TestManifestCompaction:
    def _stats(self):
        return ParallelRunner(scale=TINY_SCALE, jobs=1).run_points(
            _grid(("addition",), (Variant.SCALAR,))
        )[0]

    def test_resume_compacts_to_latest_per_point(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        stats = self._stats()
        with RunManifest(path, cache_version="v") as m:
            for _ in range(4):  # repeated kills/re-records of one point
                m.record_ok("key-a", stats, label="a")
            m.record_ok("key-b", stats, label="b", resumed_from="ckpt_x")
        assert len(path.read_text().splitlines()) == 6  # header + 5
        reopened = RunManifest(path, resume=True, cache_version="v")
        reopened.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # header + one line per key
        assert json.loads(lines[0])["type"] == "header"
        by_key = {json.loads(l)["key"]: json.loads(l) for l in lines[1:]}
        assert set(by_key) == {"key-a", "key-b"}
        assert by_key["key-b"]["resumed_from"] == "ckpt_x"
        assert set(reopened.completed) == {"key-a", "key-b"}

    def test_latest_record_wins_over_stale_failure(self, tmp_path):
        from repro.experiments.faults import PointFailure

        path = tmp_path / "manifest.jsonl"
        stats = self._stats()
        with RunManifest(path, cache_version="v") as m:
            m.record_failure(PointFailure(
                status="worker-lost", label="a", key="key-a",
            ))
            m.record_ok("key-a", stats, label="a")  # the retry succeeded
        reopened = RunManifest(path, resume=True, cache_version="v")
        reopened.close()
        assert "key-a" in reopened.completed
        assert "key-a" not in reopened.failures
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # compacted to the ok record only
        assert json.loads(lines[1])["status"] == "ok"

    def test_resumed_from_absent_by_default(self, tmp_path):
        """Non-checkpointed records stay byte-stable: no resumed_from
        field unless a resume actually happened."""
        path = tmp_path / "manifest.jsonl"
        with RunManifest(path, cache_version="v") as m:
            m.record_ok("key-a", self._stats(), label="a")
        assert "resumed_from" not in path.read_text()


# ---------------------------------------------------------------------------
# GC
# ---------------------------------------------------------------------------


def _age(path: Path, seconds: float = 10_000.0) -> None:
    past = time.time() - seconds
    os.utime(path, (past, past))


class TestGc:
    def test_age_and_count_caps_on_quarantine(self, tmp_path):
        q = tmp_path / "quarantine"
        q.mkdir()
        old = q / "old.json"
        old.write_text("x")
        _age(old)
        fresh = q / "fresh.json"
        fresh.write_text("y")
        report = gc_cache(tmp_path, max_age_s=3600.0)
        assert report.quarantine_removed == 1
        assert not old.exists() and fresh.exists()

    def test_quarantine_count_cap_keeps_newest(self, tmp_path):
        q = tmp_path / "quarantine"
        q.mkdir()
        for i in range(5):
            p = q / f"f{i}.json"
            p.write_text("x")
            _age(p, seconds=100 * (5 - i))  # f4 newest
        report = gc_cache(tmp_path, max_age_s=1e9, max_quarantine=2)
        assert report.quarantine_removed == 3
        assert sorted(p.name for p in q.iterdir()) == ["f3.json", "f4.json"]

    def test_snapshot_dirs_swept_and_removed(self, tmp_path):
        pt = tmp_path / "checkpoints" / "deadbeef"
        pt.mkdir(parents=True)
        for r in (10, 20, 30):
            p = pt / f"ckpt_{r:015d}.ckpt.json"
            p.write_text("{}")
            _age(p)
        (pt / "leftover.tmp").write_text("")
        report = gc_cache(tmp_path, max_age_s=3600.0, keep_per_point=0)
        assert report.snapshots_removed == 3
        assert report.tmp_removed == 1
        assert not pt.exists()  # emptied directories are removed
        assert not (tmp_path / "checkpoints").exists()

    def test_keep_retains_newest_snapshot(self, tmp_path):
        pt = tmp_path / "checkpoints" / "cafe"
        pt.mkdir(parents=True)
        for r in (10, 20):
            (pt / f"ckpt_{r:015d}.ckpt.json").write_text("{}")
        report = gc_cache(tmp_path, max_age_s=1e9, keep_per_point=1)
        assert report.snapshots_removed == 1
        assert [p.name for p in sorted(pt.iterdir())] == [
            "ckpt_000000000000020.ckpt.json"
        ]

    def test_gc_never_raises_on_missing_roots(self, tmp_path):
        report = gc_cache(tmp_path / "nope")
        assert report.total_removed == 0
        assert report.errors == 0


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCliCheckpoint:
    ARGS = [
        "figure2", "--scale", "tiny", "--benchmarks", "addition",
        "--jobs", "1", "--quiet",
    ]

    def test_small_interval_writes_snapshots(self, tmp_path, capsys):
        code = main(self.ARGS + [
            "--out", str(tmp_path), "--checkpoint-interval", "3000",
        ])
        assert code == 0
        ckpt_root = tmp_path / ".simcache" / "checkpoints"
        assert list(ckpt_root.rglob("ckpt_*.ckpt.json"))

    def test_no_checkpoint_writes_nothing(self, tmp_path, capsys):
        code = main(self.ARGS + [
            "--out", str(tmp_path), "--no-checkpoint",
            "--checkpoint-interval", "3000",
        ])
        assert code == 0
        assert not (tmp_path / ".simcache" / "checkpoints").exists()

    def test_cache_gc_verb(self, tmp_path, capsys):
        cache_dir = tmp_path / ".simcache"
        q = cache_dir / "quarantine"
        q.mkdir(parents=True)
        bad = q / "bad.json"
        bad.write_text("x")
        _age(bad)
        pt = cache_dir / "checkpoints" / "k1"
        pt.mkdir(parents=True)
        for r in (1, 2, 3):
            snap = pt / f"ckpt_{r:015d}.ckpt.json"
            snap.write_text("{}")
            _age(snap)
        (pt / "junk.tmp").write_text("")
        code = main([
            "cache", "gc", "--out", str(tmp_path),
            "--gc-max-age-hours", "1", "--gc-keep", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gc: removed" in out
        assert not bad.exists()
        assert not pt.exists()

    def test_cache_requires_gc_verb(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "--out", str(tmp_path)])
        with pytest.raises(SystemExit):
            main(["cache", "polish", "--out", str(tmp_path)])

    def test_stray_verb_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["figure2", "gc", "--out", str(tmp_path)])
