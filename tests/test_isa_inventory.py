"""ISA-registry invariants: Table 2 latencies and Table 4 coverage."""

from repro.isa import OPCODES, Category, OpClass, VisGroup, spec, vis_opcodes
from repro.isa.instruction import Instruction


def test_table2_functional_unit_latencies():
    assert spec("add").latency == 1
    assert spec("mul").latency == 7
    assert spec("div").latency == 12 and not spec("div").pipelined
    assert spec("fadd").latency == 4
    assert spec("fdivd").latency == 12 and not spec("fdivd").pipelined
    # default VIS 1; VIS multiply / pdist 3
    assert spec("fpadd16").latency == 1
    assert spec("fmul8x16").latency == 3
    assert spec("pdist").latency == 3


def test_table4_groups_all_present():
    groups = {
        OPCODES[name].vis_group for name in vis_opcodes()
    }
    assert groups == set(VisGroup)


def test_table4_memory_ops_include_partial_and_short():
    memory_vis = [
        name for name in vis_opcodes()
        if OPCODES[name].vis_group is VisGroup.MEMORY
    ]
    assert "pst" in memory_vis
    assert "ldfb" in memory_vis and "stfh" in memory_vis


def test_vis_ops_split_between_adder_and_multiplier():
    adder = [n for n, op in OPCODES.items() if op.opclass is OpClass.VIS_ADD]
    multiplier = [n for n, op in OPCODES.items() if op.opclass is OpClass.VIS_MUL]
    assert "fpadd16" in adder and "faligndata" in adder and "edge8" in adder
    assert set(multiplier) == {
        "fmul8x16", "fmul8x16au", "fmul8x16al",
        "fmul8sux16", "fmul8ulx16", "pdist",
    }


def test_figure2_categories_partition_opcodes():
    for name, op in OPCODES.items():
        assert op.category in Category
        if op.is_memory:
            assert op.category is Category.MEMORY
        if op.is_control:
            assert op.category is Category.BRANCH
        if op.is_vis:
            assert op.category is Category.VIS


def test_unknown_opcode_rejected():
    import pytest

    with pytest.raises(KeyError, match="unknown opcode"):
        spec("frobnicate")


def test_disassembly_renders_operands():
    text = Instruction(op="add", dst=3, srcs=(4, 5)).disassemble(7)
    assert "add" in text and "r3" in text and "r4" in text and "7" in text
    branch = Instruction(op="beq", srcs=(1, 0), target=12).disassemble()
    assert "@12" in text or "@12" in branch
