"""Cross-cutting property tests (hypothesis) on the simulator core."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cpu.stats import RetireUnit
from repro.mem import A_LOAD, A_PREFETCH, A_STORE, MemoryConfig, MemorySystem


class TestRetireUnitProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 3)),
            min_size=1, max_size=300,
        ),
        st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_accounting_always_partitions_time(self, gaps, width):
        """busy + stalls == total cycles (within the final-cycle slack)
        for ANY retirement schedule — the Section 2.3.4 convention is a
        complete partition of execution time."""
        unit = RetireUnit(width)
        cycle = 0
        for gap, cls in gaps:
            cycle += gap
            unit.retire(cycle, cls)
        total = unit.busy_cycles + sum(unit.stalls)
        assert abs(total - unit.total_cycles) <= 1.0

    @given(
        st.lists(st.integers(0, 10), min_size=1, max_size=200),
        st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_retire_cycles_monotone(self, gaps, width):
        unit = RetireUnit(width)
        cycle = 0
        last = -1
        for gap in gaps:
            cycle += gap
            retired_at = unit.retire(cycle, 0)
            assert retired_at >= last
            assert retired_at >= cycle
            last = retired_at


ACCESS_KINDS = st.sampled_from([A_LOAD, A_STORE, A_PREFETCH])


class TestMemorySystemProperties:
    @given(
        st.lists(
            st.tuples(ACCESS_KINDS, st.integers(0, 1 << 14), st.integers(0, 3)),
            min_size=1, max_size=300,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_completions_never_precede_requests(self, accesses):
        mem = MemorySystem(MemoryConfig().scaled(64))
        cycle = 0
        for kind, addr, advance in accesses:
            cycle += advance
            done, level = mem.access(kind, addr, cycle)
            assert done >= cycle + 1
            assert level in (0, 1, 2)

    @given(
        st.lists(
            st.tuples(ACCESS_KINDS, st.integers(0, 1 << 14), st.integers(0, 3)),
            min_size=1, max_size=300,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_stats_are_consistent(self, accesses):
        mem = MemorySystem(MemoryConfig().scaled(64))
        cycle = 0
        for kind, addr, advance in accesses:
            cycle += advance
            mem.access(kind, addr, cycle)
        stats = mem.stats
        assert stats.l1_accesses == len(accesses)
        # a combined access is neither a hit nor a line miss
        assert (
            stats.l1_hits + stats.l1_misses + stats.mshr_combined
            + stats.combine_limit_stalls
            == stats.l1_accesses
        )
        assert stats.l2_hits + stats.l2_misses <= stats.l1_misses
        assert 0.0 <= stats.l1_miss_rate <= 1.0

    @given(st.integers(0, 1 << 16), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_second_access_to_quiet_line_is_a_hit(self, addr, start):
        mem = MemorySystem(MemoryConfig().scaled(64))
        done, _ = mem.access(A_LOAD, addr, start)
        _done2, level = mem.access(A_LOAD, addr, done + 1)
        assert level == 0  # LEVEL_L1


class TestMachineDeterminism:
    @given(st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_identical_runs_produce_identical_traces(self, seed):
        import numpy as np

        from repro.asm import ProgramBuilder
        from repro.sim import Machine

        rng = np.random.default_rng(seed)
        data = bytes(rng.integers(0, 256, 64, dtype=np.uint8))
        b = ProgramBuilder()
        b.buffer("src", 64, data=data)
        acc, p = b.iregs(2)
        b.la(p, "src")
        b.li(acc, 0)
        with b.loop(0, 64):
            with b.scratch(iregs=1) as t:
                skip = b.label()
                b.ldb(t, p)
                b.blt(t, 128, skip, hint=False)
                b.add(acc, acc, 1)
                b.bind(skip)
            b.add(p, p, 1)
        program = b.build()
        m1, m2 = Machine(program), Machine(program)
        assert m1.run_to_completion() == m2.run_to_completion()
