"""Memory-hierarchy timing-model tests (Table 3 behaviours)."""

import pytest

from repro.mem import (
    A_LOAD,
    A_PREFETCH,
    A_STORE,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_MEM,
    MemoryConfig,
    MemorySystem,
)


def tiny_config(**overrides):
    defaults = dict(
        l1_size=512, l1_assoc=2, l2_size=2048, l2_assoc=4,
        l1_mshrs=4, l2_mshrs=4, mshr_combine_max=2,
    )
    defaults.update(overrides)
    return MemoryConfig(**defaults)


def test_config_validates_geometry():
    with pytest.raises(ValueError):
        MemoryConfig(l1_size=100)


def test_sets_computed():
    cfg = MemoryConfig()
    assert cfg.l1_sets == 64 * 1024 // (64 * 2)
    assert cfg.l2_sets == 128 * 1024 // (64 * 4)


def test_scaled_preserves_line_and_floors():
    cfg = MemoryConfig().scaled(64)
    assert cfg.l1_size == 1024
    assert cfg.l2_size == 2048
    tiny = MemoryConfig().scaled(1 << 20)
    assert tiny.l1_size == 64 * 2  # one set per way floor


def test_cold_miss_then_hit_latencies():
    mem = MemorySystem(tiny_config())
    done, level = mem.access(A_LOAD, 0x1000, 0)
    assert level == LEVEL_MEM
    assert done >= mem.config.mem_latency_cycles
    done2, level2 = mem.access(A_LOAD, 0x1008, done)
    assert level2 == LEVEL_L1
    assert done2 == done + mem.config.l1_hit_cycles
    assert mem.stats.l1_hits == 1
    assert mem.stats.l1_misses == 1


def test_l2_hit_after_l1_eviction():
    cfg = tiny_config()  # L1: 512B 2-way = 4 sets; same set every 256B
    mem = MemorySystem(cfg)
    t = 0
    # Fill one L1 set beyond its associativity; all lines land in L2.
    for i in range(3):
        t, _ = mem.access(A_LOAD, 0x1000 + i * 256, t)
    # The evicted first line now hits in L2, not memory.
    done, level = mem.access(A_LOAD, 0x1000, t)
    assert level == LEVEL_L2


def test_lru_keeps_recently_used_line():
    cfg = tiny_config()
    mem = MemorySystem(cfg)
    t = 0
    t, _ = mem.access(A_LOAD, 0x0000, t)      # way 1
    t, _ = mem.access(A_LOAD, 0x0100, t)      # way 2 (same set)
    t, _ = mem.access(A_LOAD, 0x0000, t)      # touch first -> MRU
    t, _ = mem.access(A_LOAD, 0x0200, t)      # evicts 0x0100
    _, level = mem.access(A_LOAD, 0x0000, t + 200)
    assert level == LEVEL_L1


def test_mshr_combining_and_limit():
    cfg = tiny_config()
    mem = MemorySystem(cfg)
    done0, _ = mem.access(A_LOAD, 0x3000, 0)
    done1, lvl1 = mem.access(A_LOAD, 0x3008, 1)   # combines (1 of max 2)
    assert mem.stats.mshr_combined == 1
    assert done1 <= done0 + cfg.l1_hit_cycles
    # second combine hits the per-MSHR limit -> waits for the fill
    done2, _ = mem.access(A_LOAD, 0x3010, 2)
    assert mem.stats.combine_limit_stalls == 1
    assert done2 >= done0


def test_mshr_full_stalls_new_misses():
    cfg = tiny_config(l1_mshrs=2)
    mem = MemorySystem(cfg)
    mem.access(A_STORE, 0x0000, 0)
    mem.access(A_STORE, 0x1000, 0)
    done, _ = mem.access(A_LOAD, 0x2000, 0)   # no MSHR free
    assert mem.stats.mshr_full_stalls == 1
    assert done > mem.config.mem_latency_cycles


def test_store_marks_dirty_and_writeback_counted():
    cfg = tiny_config()
    mem = MemorySystem(cfg)
    t, _ = mem.access(A_STORE, 0x0000, 0)
    # evict the dirty line (same L1 set) twice over
    t, _ = mem.access(A_LOAD, 0x0100, t)
    t, _ = mem.access(A_LOAD, 0x0200, t)
    t, _ = mem.access(A_LOAD, 0x0300, t)
    assert mem.stats.writebacks >= 1


def test_prefetch_then_load_is_useful():
    mem = MemorySystem(tiny_config())
    done, _ = mem.access(A_PREFETCH, 0x4000, 0)
    mem.access(A_LOAD, 0x4000, done + 10)
    assert mem.stats.prefetch_useful == 1
    assert mem.stats.prefetch_late == 0


def test_prefetch_too_late_counted():
    mem = MemorySystem(tiny_config())
    mem.access(A_PREFETCH, 0x4000, 0)
    mem.access(A_LOAD, 0x4000, 1)   # arrives while the fill is in flight
    assert mem.stats.prefetch_late == 1


def test_redundant_prefetch_counted():
    mem = MemorySystem(tiny_config())
    done, _ = mem.access(A_LOAD, 0x4000, 0)
    mem.access(A_PREFETCH, 0x4000, done + 5)
    assert mem.stats.prefetch_redundant == 1


def test_port_contention_serializes_same_cycle_accesses():
    cfg = tiny_config()
    mem = MemorySystem(cfg)
    # warm two lines
    t, _ = mem.access(A_LOAD, 0x0000, 0)
    t2, _ = mem.access(A_LOAD, 0x0040, t)
    base = max(t, t2) + 10
    done = [mem.access(A_LOAD, 0x0000, base)[0] for _ in range(3)]
    # 2 ports -> the third same-cycle hit completes one cycle later
    assert done[0] == done[1]
    assert done[2] == done[0] + 1


def test_load_miss_overlap_histogram():
    mem = MemorySystem(tiny_config(l1_mshrs=8, mshr_combine_max=8))
    for i in range(4):
        mem.access(A_LOAD, 0x8000 + i * 4096, 0)
    assert mem.stats.max_load_miss_overlap == 3
    assert sum(mem.stats.load_miss_overlap.values()) == 4


def test_flush_clears_state():
    mem = MemorySystem(tiny_config())
    t, _ = mem.access(A_LOAD, 0x0000, 0)
    mem.flush()
    _, level = mem.access(A_LOAD, 0x0000, t + 500)
    assert level == LEVEL_MEM
