"""CLI smoke tests (tiny scale, subset benchmarks)."""

import pytest

from repro.experiments.cli import main


def test_params_listing(capsys):
    assert main(["params"]) == 0
    out = capsys.readouterr().out
    assert "issue_width" in out and "l2_size" in out


def test_figure2_subset(tmp_path, capsys):
    code = main([
        "figure2", "--scale", "tiny", "--benchmarks", "addition",
        "--out", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "addition" in out and "VIS" in out
    assert (tmp_path / "figure2_tiny.csv").exists()


def test_branch_stats_subset(tmp_path, capsys):
    code = main([
        "branch-stats", "--scale", "tiny", "--benchmarks", "thresh",
        "--out", str(tmp_path), "--no-validate",
    ])
    assert code == 0
    assert "thresh" in capsys.readouterr().out


def test_parallel_jobs_match_serial(tmp_path, capsys):
    """--jobs 2 fans out over real worker processes and must write the
    same CSV bytes as --jobs 1."""
    common = [
        "figure2", "--scale", "tiny", "--benchmarks", "addition", "thresh",
        "--no-cache", "--quiet",
    ]
    assert main(common + ["--out", str(tmp_path / "serial"), "--jobs", "1"]) == 0
    assert main(common + ["--out", str(tmp_path / "par"), "--jobs", "2"]) == 0
    serial = (tmp_path / "serial" / "figure2_tiny.csv").read_bytes()
    parallel = (tmp_path / "par" / "figure2_tiny.csv").read_bytes()
    assert serial == parallel


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["no-such-experiment"])


def test_unknown_benchmark_raises(tmp_path):
    with pytest.raises(KeyError):
        main([
            "figure2", "--scale", "tiny", "--benchmarks", "bogus",
            "--out", str(tmp_path),
        ])
