"""CLI smoke tests (tiny scale, subset benchmarks)."""

import pytest

from repro.experiments.cli import main


def test_params_listing(capsys):
    assert main(["params"]) == 0
    out = capsys.readouterr().out
    assert "issue_width" in out and "l2_size" in out


def test_figure2_subset(tmp_path, capsys):
    code = main([
        "figure2", "--scale", "tiny", "--benchmarks", "addition",
        "--out", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "addition" in out and "VIS" in out
    assert (tmp_path / "figure2_tiny.csv").exists()


def test_branch_stats_subset(tmp_path, capsys):
    code = main([
        "branch-stats", "--scale", "tiny", "--benchmarks", "thresh",
        "--out", str(tmp_path), "--no-validate",
    ])
    assert code == 0
    assert "thresh" in capsys.readouterr().out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["no-such-experiment"])


def test_unknown_benchmark_raises(tmp_path):
    with pytest.raises(KeyError):
        main([
            "figure2", "--scale", "tiny", "--benchmarks", "bogus",
            "--out", str(tmp_path),
        ])
