"""CLI smoke tests (tiny scale, subset benchmarks)."""

import json

import pytest

from repro.experiments.cli import EXIT_AUDIT_DIVERGENCE, main
from repro.trace import AuditError


def test_params_listing(capsys):
    assert main(["params"]) == 0
    out = capsys.readouterr().out
    assert "issue_width" in out and "l2_size" in out


def test_figure2_subset(tmp_path, capsys):
    code = main([
        "figure2", "--scale", "tiny", "--benchmarks", "addition",
        "--out", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "addition" in out and "VIS" in out
    assert (tmp_path / "figure2_tiny.csv").exists()


def test_branch_stats_subset(tmp_path, capsys):
    code = main([
        "branch-stats", "--scale", "tiny", "--benchmarks", "thresh",
        "--out", str(tmp_path), "--no-validate",
    ])
    assert code == 0
    assert "thresh" in capsys.readouterr().out


def test_parallel_jobs_match_serial(tmp_path, capsys):
    """--jobs 2 fans out over real worker processes and must write the
    same CSV bytes as --jobs 1."""
    common = [
        "figure2", "--scale", "tiny", "--benchmarks", "addition", "thresh",
        "--no-cache", "--quiet",
    ]
    assert main(common + ["--out", str(tmp_path / "serial"), "--jobs", "1"]) == 0
    assert main(common + ["--out", str(tmp_path / "par"), "--jobs", "2"]) == 0
    serial = (tmp_path / "serial" / "figure2_tiny.csv").read_bytes()
    parallel = (tmp_path / "par" / "figure2_tiny.csv").read_bytes()
    assert serial == parallel


class TestFlagPlumbing:
    """--jobs / --no-cache / --cache-dir / --quiet and the stderr
    points summary (PR 1 flags, locked down here)."""

    COMMON = ["figure2", "--scale", "tiny", "--benchmarks", "addition"]

    def test_points_summary_cold_then_warm(self, tmp_path, capsys):
        """Cold run simulates every point; a warm re-run with the same
        --cache-dir serves all of them from cache."""
        argv = self.COMMON + [
            "--out", str(tmp_path), "--cache-dir", str(tmp_path / "cc"),
            "--jobs", "1", "--quiet",
        ]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "points: 2 simulated, 0 from cache" in err
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "points: 0 simulated, 2 from cache" in err

    def test_no_cache_notes_disabled(self, tmp_path, capsys):
        argv = self.COMMON + [
            "--out", str(tmp_path), "--no-cache", "--jobs", "1", "--quiet",
        ]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "points: 2 simulated, 0 from cache (persistent cache disabled)" in err

    def test_quiet_suppresses_progress(self, tmp_path, capsys):
        argv = self.COMMON + [
            "--out", str(tmp_path), "--no-cache", "--jobs", "1",
        ]
        assert main(argv + ["--quiet"]) == 0
        quiet_err = capsys.readouterr().err
        assert main(argv) == 0
        loud_err = capsys.readouterr().err
        # progress lines mention the benchmark; the quiet run only
        # carries the final points summary
        assert "addition" in loud_err
        assert "addition" not in quiet_err

    def test_jobs_flag_rejects_garbage(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(self.COMMON + ["--out", str(tmp_path), "--jobs", "two"])
        assert exc.value.code == 2


class TestAuditFlag:
    def test_audit_reports_zero_divergences(self, tmp_path, capsys):
        code = main([
            "figure2", "--scale", "tiny", "--benchmarks", "addition",
            "--out", str(tmp_path), "--no-cache", "--jobs", "1",
            "--quiet", "--audit",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "audit: 2 simulated point(s) audited, zero divergences" in err

    def test_audit_notes_cached_points_skipped(self, tmp_path, capsys):
        common = [
            "figure2", "--scale", "tiny", "--benchmarks", "addition",
            "--out", str(tmp_path), "--cache-dir", str(tmp_path / "cc"),
            "--jobs", "1", "--quiet", "--audit",
        ]
        assert main(common) == 0
        capsys.readouterr()
        assert main(common) == 0
        err = capsys.readouterr().err
        assert "2 cached point(s) skipped" in err
        assert "--no-cache to re-audit" in err

    def test_divergence_exits_3(self, tmp_path, capsys, monkeypatch):
        """A forced attribution divergence turns into exit code 3 and
        an AUDIT FAILURE line on stderr."""
        import repro.experiments.runner as runner_mod

        def broken_audit(stats, tracer):
            raise AuditError("injected divergence for the exit-code test")

        monkeypatch.setattr(runner_mod, "audit_run", broken_audit)
        code = main([
            "figure2", "--scale", "tiny", "--benchmarks", "addition",
            "--out", str(tmp_path), "--no-cache", "--jobs", "1",
            "--quiet", "--audit",
        ])
        assert code == EXIT_AUDIT_DIVERGENCE == 3
        assert "AUDIT FAILURE: injected divergence" in capsys.readouterr().err


class TestTraceSubcommand:
    def test_record_then_report(self, tmp_path, capsys):
        trace_path = tmp_path / "addition_vis.jsonl"
        code = main([
            "trace", "--scale", "tiny", "--benchmarks", "addition",
            "--variant", "vis", "--trace-out", str(trace_path),
            "--out", str(tmp_path),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "audit[addition[vis]" in captured.err
        assert "events to" in captured.err
        assert "pipeline timeline" in captured.out
        assert "stall sites" in captured.out
        # the JSONL is well-formed: header line + event arrays
        lines = trace_path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "header"
        assert header["benchmark"] == "addition"
        assert all(len(json.loads(l)) == 6 for l in lines[1:])

        # report-only mode re-renders from the file without simulating
        capsys.readouterr()
        assert main(["trace", "--trace-in", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "stall sites" in out

    def test_trace_without_input_or_benchmark_errors(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "--out", str(tmp_path)])
        assert exc.value.code == 2

    def test_trace_rejects_non_trace_file(self, tmp_path):
        bogus = tmp_path / "not_a_trace.jsonl"
        bogus.write_text("this is not json\n")
        with pytest.raises(ValueError):
            main(["trace", "--trace-in", str(bogus)])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["no-such-experiment"])


def test_unknown_benchmark_raises(tmp_path):
    with pytest.raises(KeyError):
        main([
            "figure2", "--scale", "tiny", "--benchmarks", "bogus",
            "--out", str(tmp_path),
        ])
