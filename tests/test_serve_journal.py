"""Unit tests for the crash-only serving journal and its gc sweeps.

The journal's durability semantics (fsynced appends, torn-final-line
tolerance, latest-record-per-key compaction, incompatible-header
discard) mirror the batch stack's ``RunManifest`` and are tested the
same way: against real files, including deliberately torn ones.  The
``cache gc`` half covers the serve-layer debris sweeps: dead-pid worker
markers, orphaned journals from another cache generation, aged terminal
records, and ``--release-poisoned``.
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments.faults import STATUS_POISONED, PointFailure
from repro.experiments.gc import _current_cache_version, gc_cache
from repro.serve.journal import (
    JOURNAL_FORMAT_VERSION,
    STATUS_ADMITTED,
    ServeJournal,
    journal_path,
    load_journal_records,
    rewrite_journal,
)
from repro.serve.server import SERVE_RUNNING_DIRNAME

VERSION = "2.1.1"  # an arbitrary-but-consistent cache generation

SPEC = {"benchmark": "addition", "variant": "scalar", "scale": "tiny"}


def make_journal(tmp_path, cache_version=VERSION) -> ServeJournal:
    return ServeJournal(tmp_path, cache_version=cache_version)


def poisoned_failure(key: str) -> PointFailure:
    return PointFailure(
        status=STATUS_POISONED, label="addition[scalar]", key=key,
        error_type="BrokenExecutor", message="worker died 3 times",
    )


class TestJournalLifecycle:
    def test_admitted_then_ok_is_not_pending(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record_admitted("k1", SPEC, "normal", "addition[scalar]")
        assert set(journal.pending()) == {"k1"}
        assert journal.lag() == 1
        journal.record_ok("k1", "addition[scalar]", "simulated", elapsed=1.5)
        assert journal.pending() == {}
        assert journal.lag() == 0
        journal.close()

    def test_records_survive_reopen(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record_admitted(
            "k1", SPEC, "high", "addition[scalar]", worker_losses=2
        )
        journal.record_failure(poisoned_failure("k2"))
        journal.close()
        again = make_journal(tmp_path)
        pending = again.pending()
        assert pending["k1"]["spec"] == SPEC
        assert pending["k1"]["lane"] == "high"
        assert pending["k1"]["worker_losses"] == 2
        assert set(again.poisoned()) == {"k2"}
        again.close()

    def test_compaction_drops_terminal_keeps_actionable(self, tmp_path):
        journal = make_journal(tmp_path)
        for i in range(5):
            journal.record_admitted(f"ok{i}", SPEC, "normal", "x")
            journal.record_ok(f"ok{i}", "x", "simulated")
        journal.record_admitted("pending", SPEC, "normal", "x")
        journal.record_failure(poisoned_failure("poison"))
        journal.compact()
        _header, records = load_journal_records(journal.path)
        assert set(records) == {"pending", "poison"}
        # the append handle survived the compaction rewrite: new
        # records land in the compacted file, not an orphaned inode
        journal.record_admitted("after", SPEC, "normal", "x")
        journal.close()
        _header, records = load_journal_records(journal.path)
        assert set(records) == {"pending", "poison", "after"}

    def test_preempted_record_carries_replay_fields_forward(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record_admitted(
            "k1", SPEC, "high", "addition[scalar]", worker_losses=1
        )
        journal.record_failure(PointFailure(
            status="preempted", label="addition[scalar]", key="k1",
            error_type="Preempted", message="shutdown",
        ))
        journal.close()
        again = make_journal(tmp_path)
        record = again.pending()["k1"]
        assert record["status"] == "preempted"
        assert record["spec"] == SPEC
        assert record["lane"] == "high"
        assert record["worker_losses"] == 1
        again.close()

    def test_resumed_from_provenance_recorded(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record_ok(
            "k1", "x", "simulated", resumed_from="ckpt_000004000.ckpt.json"
        )
        assert journal.records["k1"]["resumed_from"].startswith("ckpt_")
        journal.close()


class TestJournalDurability:
    def test_torn_final_line_is_dropped(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record_admitted("k1", SPEC, "normal", "x")
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "point", "key": "torn", "stat')  # SIGKILL
        again = make_journal(tmp_path)
        assert set(again.records) == {"k1"}
        again.close()

    def test_incompatible_cache_version_starts_fresh(self, tmp_path):
        journal = make_journal(tmp_path, cache_version="1.0.0")
        journal.record_admitted("k1", SPEC, "normal", "x")
        journal.close()
        again = make_journal(tmp_path, cache_version="9.9.9")
        assert again.records == {}
        again.close()
        header, _ = load_journal_records(journal_path(tmp_path))
        assert header["cache_version"] == "9.9.9"

    def test_garbage_header_starts_fresh(self, tmp_path):
        path = journal_path(tmp_path)
        path.write_text("not json at all\n", encoding="utf-8")
        journal = make_journal(tmp_path)
        assert journal.records == {}
        journal.record_admitted("k1", SPEC, "normal", "x")
        journal.close()
        header, records = load_journal_records(path)
        assert header["version"] == JOURNAL_FORMAT_VERSION
        assert set(records) == {"k1"}

    def test_loader_version_gate(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record_admitted("k1", SPEC, "normal", "x")
        journal.close()
        header, records = load_journal_records(
            journal.path, cache_version=VERSION
        )
        assert header is not None and set(records) == {"k1"}
        header, records = load_journal_records(
            journal.path, cache_version="other"
        )
        assert header is None and records == {}

    def test_rewrite_journal_atomic(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record_admitted("k1", SPEC, "normal", "x")
        journal.record_admitted("k2", SPEC, "normal", "y")
        journal.close()
        kept = [journal.records["k2"]]
        assert rewrite_journal(journal.path, kept)
        _header, records = load_journal_records(journal.path)
        assert set(records) == {"k2"}


class TestGcServeSweeps:
    def _marker(self, tmp_path, pid: int, name: str = None):
        mdir = tmp_path / SERVE_RUNNING_DIRNAME
        mdir.mkdir(exist_ok=True)
        path = mdir / (name or f"{pid}.json")
        path.write_text(
            json.dumps({"pid": pid, "key": "k", "label": "x"}),
            encoding="utf-8",
        )
        return path

    def test_dead_pid_markers_swept_live_kept(self, tmp_path):
        # pid 1 is init (alive, not ours); a huge pid is certainly dead
        dead = self._marker(tmp_path, 2 ** 22 + 12345, name="dead.json")
        live = self._marker(tmp_path, os.getpid(), name="live.json")
        report = gc_cache(tmp_path)
        assert report.markers_removed == 1
        assert not dead.exists() and live.exists()

    def test_torn_marker_is_swept(self, tmp_path):
        mdir = tmp_path / SERVE_RUNNING_DIRNAME
        mdir.mkdir()
        (mdir / "torn.json").write_text('{"pid": ', encoding="utf-8")
        report = gc_cache(tmp_path)
        assert report.markers_removed == 1
        assert not mdir.exists()  # emptied directory removed too

    def test_incompatible_journal_removed_wholesale(self, tmp_path):
        journal = make_journal(tmp_path, cache_version="0.0.0-ancient")
        journal.record_admitted("k1", SPEC, "normal", "x")
        journal.close()
        report = gc_cache(tmp_path)
        assert report.journals_removed == 1
        assert not journal_path(tmp_path).exists()

    def test_compatible_journal_keeps_pending_prunes_aged_terminal(
        self, tmp_path
    ):
        journal = make_journal(
            tmp_path, cache_version=_current_cache_version()
        )
        journal.record_admitted("pending", SPEC, "normal", "x")
        journal.record_admitted("done", SPEC, "normal", "y")
        journal.record_ok("done", "y", "simulated")
        journal.close()
        report = gc_cache(tmp_path, max_age_s=0.0, now=time.time() + 60)
        assert report.journals_removed == 0
        assert report.journal_records_removed == 1
        _header, records = load_journal_records(journal_path(tmp_path))
        assert set(records) == {"pending"}
        assert records["pending"]["status"] == STATUS_ADMITTED

    def test_release_poisoned(self, tmp_path):
        version = _current_cache_version()
        journal = make_journal(tmp_path, cache_version=version)
        journal.record_admitted("pending", SPEC, "normal", "x")
        journal.record_failure(poisoned_failure("poison"))
        journal.close()
        # without the flag the quarantine record is untouchable
        report = gc_cache(tmp_path, max_age_s=0.0, now=time.time() + 60)
        assert report.poisoned_released == 0
        again = make_journal(tmp_path, cache_version=version)
        assert set(again.poisoned()) == {"poison"}
        again.close()
        # with it, the record is dropped and the point is admissible
        report = gc_cache(tmp_path, release_poisoned=True)
        assert report.poisoned_released == 1
        released = make_journal(tmp_path, cache_version=version)
        assert released.poisoned() == {}
        assert set(released.pending()) == {"pending"}
        released.close()

    def test_summary_mentions_serve_sweeps(self, tmp_path):
        self._marker(tmp_path, 2 ** 22 + 54321, name="dead.json")
        report = gc_cache(tmp_path)
        assert "1 worker marker(s)" in report.summary()
