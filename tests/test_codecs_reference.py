"""Reference JPEG/MPEG codec tests (the substrate itself)."""

import numpy as np
import pytest

from repro.media import jpeg, mpeg
from repro.media.images import synthetic_image, synthetic_video_yuv


class TestJpegReference:
    @pytest.fixture(scope="class")
    def image(self):
        return synthetic_image(48, 32, 3, seed=11)

    @pytest.mark.parametrize("progressive", [False, True])
    def test_coefficients_roundtrip_exactly(self, image, progressive):
        enc = jpeg.encode(image, quality=75, progressive=progressive)
        dec = jpeg.decode(enc.data)
        for name in ("y", "cb", "cr"):
            assert np.array_equal(enc.coefficients[name], dec.coefficients[name])

    def test_progressive_and_baseline_decode_identically(self, image):
        baseline = jpeg.decode(jpeg.encode(image, progressive=False).data)
        progressive = jpeg.decode(jpeg.encode(image, progressive=True).data)
        assert np.array_equal(baseline.rgb, progressive.rgb)

    def test_reconstruction_quality(self, image):
        dec = jpeg.decode(jpeg.encode(image, quality=75).data)
        err = dec.rgb.astype(int) - image.astype(int)
        assert np.sqrt((err ** 2).mean()) < 15

    def test_higher_quality_is_larger_and_closer(self, image):
        lo = jpeg.encode(image, quality=30)
        hi = jpeg.encode(image, quality=95)
        assert len(hi.data) > len(lo.data)
        err_lo = jpeg.decode(lo.data).rgb.astype(int) - image.astype(int)
        err_hi = jpeg.decode(hi.data).rgb.astype(int) - image.astype(int)
        assert (err_hi ** 2).mean() < (err_lo ** 2).mean()

    def test_progressive_has_more_scans(self, image):
        assert len(jpeg.encode(image, progressive=True).scans) == 12
        assert len(jpeg.encode(image, progressive=False).scans) == 1

    def test_compression_happens(self, image):
        enc = jpeg.encode(image, quality=75)
        assert len(enc.data) < image.size / 4

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            jpeg.encode(np.zeros((20, 20, 3), dtype=np.uint8))

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            jpeg.decode(b"XXXX" + bytes(20))

    def test_plane_block_roundtrip(self):
        plane = synthetic_image(16, 16, 1, seed=1)[:, :, 0]
        blocks = jpeg.plane_to_blocks(plane)
        assert blocks.shape == (4, 8, 8)
        assert np.array_equal(jpeg.blocks_to_plane(blocks, 16, 16), plane)


class TestMpegReference:
    @pytest.fixture(scope="class")
    def frames(self):
        return synthetic_video_yuv(48, 32, 4, seed=42)

    @pytest.fixture(scope="class")
    def coded(self, frames):
        return mpeg.encode(frames, quality=75, search_range=2)

    def test_decoder_matches_encoder_reconstruction(self, frames, coded):
        dec = mpeg.decode(coded.data)
        assert np.array_equal(dec.frames[0][0], coded.reconstructed[0].y)
        assert np.array_equal(dec.frames[0][1], coded.reconstructed[0].cb)
        assert np.array_equal(dec.frames[3][0], coded.reconstructed[1].y)

    def test_frame_types(self, coded):
        dec = mpeg.decode(coded.data)
        assert dec.frame_types == ["I", "B", "B", "P"]

    def test_all_frames_reasonable_quality(self, frames, coded):
        dec = mpeg.decode(coded.data)
        for i, (y, _u, _v) in enumerate(dec.frames):
            err = y.astype(int) - frames[i][0].astype(int)
            assert np.sqrt((err ** 2).mean()) < 15, f"frame {i}"

    def test_inter_coding_used(self, coded):
        assert coded.mode_counts["inter"] + coded.mode_counts["bi"] > 0

    def test_full_search_matches_bruteforce(self, frames):
        cur, ref = frames[1][0], frames[0][0]
        for mb_y, mb_x in ((0, 0), (16, 16)):
            dy, dx, sad = mpeg.full_search(cur, ref, mb_y, mb_x, 2)
            best = (1 << 40, None)
            block = cur[mb_y : mb_y + 16, mb_x : mb_x + 16]
            for cdy in range(-2, 3):
                for cdx in range(-2, 3):
                    y, x = mb_y + cdy, mb_x + cdx
                    if y < 0 or x < 0 or y + 16 > ref.shape[0] or x + 16 > ref.shape[1]:
                        continue
                    s = mpeg.sad16(block, ref[y : y + 16, x : x + 16])
                    if s < best[0]:
                        best = (s, (cdy, cdx))
            assert sad == best[0]
            assert (dy, dx) == best[1]

    def test_search_at_zero_displacement_for_identical_frames(self, frames):
        frame = frames[0][0]
        dy, dx, sad = mpeg.full_search(frame, frame, 16, 16, 2)
        assert (dy, dx, sad) == (0, 0, 0)

    def test_coefficient_clipping_bounds_packed_lanes(self):
        levels = np.full((8, 8), 1000, dtype=np.int64)
        divisors = np.full((8, 8), 64, dtype=np.int64)
        out = mpeg.dequantize_clipped(levels, divisors)
        assert out.max() <= mpeg.COEF_CLIP

    def test_wrong_frame_count_rejected(self, frames):
        with pytest.raises(ValueError):
            mpeg.encode(frames[:2])

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            mpeg.decode(b"ZZZZ" + bytes(20))
