"""Bracketing and attribution tests for :mod:`repro.analyze.throughput`.

The static analyzer's contract is a *guarantee*, not a heuristic:
for every program the simulator accepts,

    ``report.lower  <=  ExecutionStats.cycles  <=  report.upper``

on every processor configuration and on both execution engines (which
are byte-identical by construction, so a violation on either is an
analyzer bug, never an engine bug).  These tests enforce the contract
three ways:

* a fast subset on every run (kernels x paper configs x engines);
* the full tiny grid — every workload x supported variant x all six
  paper configs x both engines — under ``@pytest.mark.slow`` (the CI
  bracketing gate; zero violations tolerated);
* a golden fixture of (bounds, binding bottleneck) for all 48 tiny
  programs, regenerable with ``--regen-golden``.

Attribution is cross-checked against the *measured* stall
decomposition (Section 2.3.4 accounting): the analyzer's issue-width
component must reproduce the audited ``busy`` time, and a
functional-unit binding must coincide with nonzero measured FU stall
time.  Finally the ``--prune-static`` sweep oracle is run against an
unpruned control sweep: >= 30% of points pruned, byte-identical Pareto
frontier, and pruned-point provenance in the run manifest.
"""

import json
import math

import pytest

from repro.analyze import analyze_throughput
from repro.asm import ProgramBuilder
from repro.cpu.config import PAPER_CONFIGS, ProcessorConfig
from repro.experiments import figures
from repro.experiments.faults import RunManifest
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import audited_simulate, simulate_program
from repro.workloads.base import Variant
from repro.workloads.params import TINY_SCALE
from repro.workloads.suite import get, names

from tests.test_golden_figures import _golden_path, _read_golden, regen_golden

ENGINES = ("vector", "scalar")

#: fast always-on subset: two kernels with different bottleneck
#: profiles, the narrowest and widest paper machines, both engines.
FAST_POINTS = [
    (bench, variant, config)
    for bench in ("dotprod", "thresh")
    for variant in ("scalar", "vis")
    for config in (ProcessorConfig.inorder_1way, ProcessorConfig.ooo_8way)
]


def _bracket(program, benchmark, cpu, mem):
    """Assert the bracketing contract for one point on both engines."""
    report = analyze_throughput(program, cpu, mem)
    for engine in ENGINES:
        stats, _ = simulate_program(
            program, cpu, mem, benchmark, engine=engine
        )
        assert report.lower <= stats.cycles, (
            f"{benchmark} @ {cpu.name} [{engine}]: lower bound "
            f"{report.lower} > simulated {stats.cycles}"
        )
        if report.upper is not None:
            assert stats.cycles <= report.upper, (
                f"{benchmark} @ {cpu.name} [{engine}]: simulated "
                f"{stats.cycles} > upper bound {report.upper}"
            )
        assert report.instr_min <= stats.instructions, (
            f"{benchmark} @ {cpu.name}: instr_min {report.instr_min} > "
            f"executed {stats.instructions}"
        )
        if report.instr_max is not None:
            assert stats.instructions <= report.instr_max, (
                f"{benchmark} @ {cpu.name}: executed "
                f"{stats.instructions} > instr_max {report.instr_max}"
            )
    return report


class TestBracketingFast:
    @pytest.mark.parametrize(
        "bench,variant,make_config",
        FAST_POINTS,
        ids=[f"{b}-{v}-{c.__name__}" for b, v, c in FAST_POINTS],
    )
    def test_bounds_bracket_simulation(self, bench, variant, make_config):
        scale = TINY_SCALE
        built = get(bench).build(Variant(variant), scale)
        report = _bracket(
            built.program, bench, make_config(), scale.memory_config()
        )
        # straight counted kernels have exact induction envelopes, so
        # the instruction-count interval collapses to a single point;
        # thresh[scalar] takes data-dependent branches and keeps a
        # genuine interval
        if bench == "dotprod":
            assert report.instr_min == report.instr_max

    def test_report_structure(self):
        scale = TINY_SCALE
        built = get("dotprod").build(Variant.VIS, scale)
        report = analyze_throughput(
            built.program, ProcessorConfig.ooo_4way(), scale.memory_config()
        )
        assert report.bounded
        assert report.lower_binding in report.lower_components
        assert report.lower == max(report.lower_components.values())
        assert report.blocks, "per-block table must not be empty"
        for block in report.blocks:
            assert block.exec_min <= (
                block.exec_max if block.exec_max is not None else math.inf
            )
            assert block.bound_cycles >= 0
            assert block.binding in block.utilization
        # rendering must not raise and must mention the binding resource
        text = report.format(max_blocks=4)
        assert report.lower_binding in text
        data = json.loads(json.dumps(report.to_dict()))
        assert data["lower"] == report.lower


@pytest.mark.slow
class TestBracketingFullGrid:
    """The CI bracketing gate: every tiny workload x variant x all six
    paper configs x both engines.  Zero violations tolerated."""

    @pytest.mark.parametrize("bench", names())
    def test_full_grid(self, bench):
        scale = TINY_SCALE
        mem = scale.memory_config()
        workload = get(bench)
        for variant in workload.supported_variants:
            built = workload.build(variant, scale)
            for config in PAPER_CONFIGS:
                _bracket(built.program, bench, config, mem)


class TestUnboundedLoop:
    def _data_dependent_program(self):
        b = ProgramBuilder("datadep")
        b.buffer("n", 8, data=(3).to_bytes(8, "little"))
        p, r, acc = b.iregs(3)
        b.la(p, "n")
        b.ldx(r, p, 0)          # trip count comes from memory
        b.li(acc, 0)
        top = b.label()
        b.bind(top)
        b.add(acc, acc, 1)
        b.sub(r, r, 1)
        b.bgt(r, 0, top)
        return b.build()

    def test_unbounded_upper_and_diagnostic(self):
        program = self._data_dependent_program()
        cpu = ProcessorConfig.ooo_4way()
        mem = TINY_SCALE.memory_config()
        report = analyze_throughput(program, cpu, mem)
        assert report.upper is None
        assert not report.bounded
        assert report.instr_max is None
        assert any(
            d.code == "W-UNBOUNDED-LOOP" for d in report.diagnostics
        ), "data-dependent trip count must raise W-UNBOUNDED-LOOP"
        # the lower bound still holds
        for engine in ENGINES:
            stats, _ = simulate_program(
                program, cpu, mem, "datadep", engine=engine
            )
            assert report.lower <= stats.cycles

    def test_counted_loop_has_no_unbounded_diag(self):
        built = get("dotprod").build(Variant.SCALAR, TINY_SCALE)
        report = analyze_throughput(
            built.program, ProcessorConfig.ooo_4way(),
            TINY_SCALE.memory_config(),
        )
        assert report.bounded
        assert not [
            d for d in report.diagnostics if d.code == "W-UNBOUNDED-LOOP"
        ]


class TestTraceCrossCheck:
    """Analyzer attribution vs the audited stall decomposition."""

    @pytest.mark.parametrize(
        "bench,variant", [("addition", "vis"), ("dotprod", "scalar")]
    )
    def test_issue_component_matches_measured_busy(self, bench, variant):
        """The issue-width component is ceil(N/width)+1; the audited
        decomposition's busy time is exactly N/width.  With exact
        instruction envelopes the two must coincide to rounding."""
        scale = TINY_SCALE
        cpu = ProcessorConfig.ooo_4way()
        built = get(bench).build(Variant(variant), scale)
        report = analyze_throughput(built.program, cpu, scale.memory_config())
        stats, audit, _ = audited_simulate(
            built.program, cpu, scale.memory_config(), benchmark=bench
        )
        assert audit.ok
        assert report.instr_min == report.instr_max == stats.instructions
        issue = report.lower_components["issue"]
        assert issue == math.ceil(stats.instructions / cpu.issue_width) + 1
        assert abs((issue - 1) - stats.busy) < 1.0

    @pytest.mark.parametrize(
        "bench,variant", [("addition", "vis"), ("dotprod", "scalar")]
    )
    def test_fu_binding_implies_measured_fu_stalls(self, bench, variant):
        """When the analyzer attributes the whole-program bound to a
        functional unit, the measured run must actually stall on FUs."""
        scale = TINY_SCALE
        cpu = ProcessorConfig.ooo_4way()
        built = get(bench).build(Variant(variant), scale)
        report = analyze_throughput(built.program, cpu, scale.memory_config())
        assert report.lower_binding.startswith("fu:")
        stats, audit, _ = audited_simulate(
            built.program, cpu, scale.memory_config(), benchmark=bench
        )
        assert audit.ok
        assert stats.fu_stall > 0.0


class TestPruneStatic:
    """--prune-static: >= 30% pruned, byte-identical Pareto frontier,
    pruned-point provenance in the run manifest."""

    BENCHMARKS = ("dotprod", "thresh")

    def _sweep(self, tmp_path, prune):
        manifest = RunManifest(
            tmp_path / f"manifest_{'p' if prune else 'u'}.jsonl",
            resume=False, cache_version="test",
        )
        runner = ParallelRunner(scale=TINY_SCALE, jobs=1, manifest=manifest)
        try:
            headers, rows, raw = figures.design_sweep(
                runner, self.BENCHMARKS, prune=prune
            )
        finally:
            manifest.close()
        return headers, rows, raw, manifest.path

    def test_prune_demo(self, tmp_path):
        headers, pruned_rows, raw, manifest_path = self._sweep(
            tmp_path, prune=True
        )
        _, control_rows, control_raw, _ = self._sweep(tmp_path, prune=False)

        total = len(control_rows)
        assert raw["pruned"] + raw["simulated"] == total
        assert raw["pruned"] >= 0.30 * total, (
            f"pruned only {raw['pruned']}/{total} points"
        )
        assert control_raw["pruned"] == 0

        # byte-identical Pareto frontier
        fcol = headers.index("frontier")
        scol = headers.index("status")
        frontier = [r for r in pruned_rows if r[fcol] == "*"]
        control_frontier = [r for r in control_rows if r[fcol] == "*"]
        assert frontier == control_frontier

        # every pruned point was off-frontier in the control sweep
        key = lambda r: (r[0], r[1])
        control_by_key = {key(r): r for r in control_rows}
        pruned_points = [r for r in pruned_rows if r[scol].startswith("pruned")]
        for row in pruned_points:
            assert control_by_key[key(row)][fcol] == "", (
                f"pruned point {key(row)} is on the control frontier"
            )

        # provenance: one manifest record per pruned point, naming its
        # dominator and carrying the bound that justified the skip
        records = [
            json.loads(line)
            for line in manifest_path.read_text().splitlines()
        ]
        pruned_records = [r for r in records if r.get("type") == "pruned"]
        assert len(pruned_records) == raw["pruned"]
        lcol = headers.index("static lower")
        lowers = {key(r): r[lcol] for r in pruned_points}
        for record in pruned_records:
            assert record["dominated_by"]
            assert record["cost"] > 0
            assert record["lower"] in lowers.values()


@pytest.mark.slow
def test_golden_throughput_bounds(request):
    """Golden (bounds, binding) for all 48 tiny programs at the
    paper's central ooo-4way machine; regen with ``--regen-golden``."""
    scale = TINY_SCALE
    cpu = ProcessorConfig.ooo_4way()
    mem = scale.memory_config()
    headers = [
        "benchmark", "variant", "instr min", "instr max",
        "lower", "upper", "binding",
    ]
    produced = []
    for bench in names():
        workload = get(bench)
        for variant in workload.supported_variants:
            built = workload.build(variant, scale)
            report = analyze_throughput(built.program, cpu, mem)
            produced.append([
                bench,
                variant.value,
                str(report.instr_min),
                "inf" if report.instr_max is None else str(report.instr_max),
                str(report.lower),
                "inf" if report.upper is None else str(report.upper),
                report.lower_binding,
            ])
    assert len(produced) == 48

    path = _golden_path("throughput_bounds")
    if request.config.getoption("--regen-golden"):
        regen_golden(request.config, path, headers, produced)
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"pytest tests/test_throughput.py --regen-golden"
    )
    golden_headers, golden_rows = _read_golden(path)
    assert headers == golden_headers
    assert produced == golden_rows
