"""Differential equivalence suite: scalar vs. vector execution engine.

The vector engine (:class:`repro.sim.vector.VectorMachine` — block
compilation, SoA chunks, trace memoization) must be *indistinguishable*
from the scalar reference (:class:`repro.sim.machine.Machine`) in
everything but speed:

* bit-identical :class:`~repro.cpu.stats.ExecutionStats` on every
  workload × variant × processor model,
* identical final functional memory images,
* audit-clean event streams (the :mod:`repro.trace` recomputation
  agrees exactly under either engine),
* identical results when a run is snapshotted at a chunk boundary and
  resumed into a fresh stack — including resuming a vector-engine
  snapshot under the scalar engine and vice versa (snapshots are
  engine-independent by design),
* all of the above on hypothesis-randomized ``ProgramBuilder``
  programs: random branch mixes, misaligned VIS access patterns, and
  random chunk-boundary checkpoints.

Tier-1 runs a fast representative subset; the full workload matrix
runs under ``-m slow`` (CI's full lane).
"""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.asm import ProgramBuilder
from repro.checkpoint import build_state, restore_state
from repro.cpu.config import ProcessorConfig
from repro.cpu.pipeline import make_model
from repro.mem import MemoryConfig
from repro.mem.system import MemorySystem
from repro.sim.engine import ENGINES, make_machine, resolve_engine
from repro.sim.machine import Machine
from repro.sim.static_info import StaticProgramInfo
from repro.sim.vector import VectorMachine
from repro.trace import Tracer, audit_run
from repro.experiments.runner import audited_simulate, simulate_program
from repro.workloads.base import Variant
from repro.workloads.params import TINY_SCALE
from repro.workloads.suite import ALL_WORKLOADS, get

from .test_audit_properties import (
    BUF,
    MAX_OFF,
    STRIDE,
    _mem,
    _op,
    build_random_program,
)

CONFIGS = (ProcessorConfig.inorder_1way, ProcessorConfig.ooo_4way)
VARIANTS = (Variant.SCALAR, Variant.VIS, Variant.VIS_PREFETCH)

#: fast tier-1 subset: one bandwidth kernel, one VIS-heavy kernel, one
#: codec — enough to catch any engine divergence class without the
#: full-matrix cost
FAST_SUBSET = ("blend", "dotprod", "djpeg")


def _matrix(names):
    out = []
    for name in names:
        for variant in VARIANTS:
            try:
                get(name).build  # registry check only
            except KeyError:
                continue
            for make_config in CONFIGS:
                out.append((name, variant, make_config))
    return out


def _ids(params):
    return [f"{n}-{v.value}-{c.__name__}" for n, v, c in params]


def _run_both_engines(program, cpu, mem, benchmark):
    """One audited run per engine; returns both (stats, machine)."""
    out = {}
    for engine in sorted(ENGINES):
        machine = make_machine(program, engine)
        stats, report, machine = audited_simulate(
            program, cpu, mem, benchmark=benchmark, machine=machine
        )
        assert report.ok, f"{engine}: {report.summary()}"
        out[engine] = (stats, machine)
    return out["scalar"], out["vector"]


def _assert_engines_agree(program, make_config, mem, benchmark):
    (s_stats, s_machine), (v_stats, v_machine) = _run_both_engines(
        program, make_config(), mem, benchmark
    )
    assert v_stats.to_dict() == s_stats.to_dict(), (
        f"{benchmark}: ExecutionStats diverged between engines"
    )
    assert bytes(v_machine.memory) == bytes(s_machine.memory), (
        f"{benchmark}: final memory images diverged between engines"
    )
    assert v_machine.instruction_count == s_machine.instruction_count


class TestWorkloadMatrix:
    """Real paper workloads, both engines, audited."""

    @pytest.mark.parametrize(
        "name,variant,make_config",
        _matrix(FAST_SUBSET),
        ids=_ids(_matrix(FAST_SUBSET)),
    )
    def test_fast_subset(self, name, variant, make_config):
        built = get(name).build(variant, TINY_SCALE)
        _assert_engines_agree(
            built.program, make_config, TINY_SCALE.memory_config(),
            f"{name}[{variant.value}]",
        )

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "name,variant,make_config",
        _matrix([w.name for w in ALL_WORKLOADS]),
        ids=_ids(_matrix([w.name for w in ALL_WORKLOADS])),
    )
    def test_full_matrix(self, name, variant, make_config):
        built = get(name).build(variant, TINY_SCALE)
        _assert_engines_agree(
            built.program, make_config, TINY_SCALE.memory_config(),
            f"{name}[{variant.value}]",
        )


class TestTraceMemoReplay:
    """The vector engine's second run of one machine replays the
    memoized trace — the replay must be as indistinguishable as the
    first run."""

    @pytest.mark.parametrize("name", FAST_SUBSET)
    def test_replay_identical_across_configs(self, name):
        built = get(name).build(Variant.VIS, TINY_SCALE)
        mem = TINY_SCALE.memory_config()
        machine = make_machine(built.program, "vector")
        for make_config in CONFIGS:
            cpu = make_config()
            ref, _m = simulate_program(
                built.program, cpu, mem, benchmark=name, engine="scalar"
            )
            got, machine = simulate_program(
                built.program, cpu, mem, benchmark=name, machine=machine
            )
            assert got.to_dict() == ref.to_dict(), (
                f"{name}/{cpu.name}: memoized replay diverged"
            )


# -- hypothesis: randomized programs ----------------------------------------

#: like test_audit_properties._op but with deliberately misaligned
#: 8-byte VIS loads/stores mixed in (offset not a multiple of 8)
_vis_access = st.tuples(
    st.just("visaccess"),
    st.sampled_from(("ldf", "stf")),
    st.integers(0, MAX_OFF),  # any byte offset: mostly misaligned
)

misaligned_shapes = st.tuples(
    st.lists(st.one_of(_op, _vis_access), min_size=1, max_size=12),
    st.integers(1, (BUF - MAX_OFF - 8) // STRIDE),
    st.integers(0, 2**31),
)


def build_misaligned_program(body, iters, seed):
    """``build_random_program`` with raw (possibly misaligned) VIS
    memory traffic folded into the loop body."""
    plain = [spec for spec in body if spec[0] != "visaccess"]
    import numpy as np

    rng = np.random.default_rng(seed)
    data = bytes(rng.integers(0, 256, BUF, dtype=np.uint8))
    b = ProgramBuilder("misaligned")
    b.buffer("src", BUF, data=data)
    acc, p, t = b.iregs(3)
    fa, fb = b.fregs(2)
    b.la(p, "src")
    b.li(acc, 0)
    b.ldf(fa, p)
    b.ldf(fb, p)
    with b.loop(0, iters):
        for spec in body:
            kind = spec[0]
            if kind == "visaccess":
                _, op, off = spec
                if op == "ldf":
                    b.ldf(fa, p, off)
                else:
                    b.stf(fa, p, off)
            elif kind == "alu":
                getattr(b, spec[1])(acc, acc, spec[2])
            elif kind == "load":
                getattr(b, spec[1])(t, p, spec[2])
                b.add(acc, acc, t)
            elif kind == "store":
                getattr(b, spec[1])(acc, p, spec[2])
            elif kind == "vis":
                op = spec[1]
                if op == "pdist":
                    b.pdist(fa, fa, fb)
                else:
                    getattr(b, op)(fa, fa, fb)
            else:
                _, threshold, hint = spec
                skip = b.label()
                b.blt(acc, threshold, skip, hint=hint)
                b.add(acc, acc, 1)
                b.bind(skip)
        b.add(p, p, STRIDE)
    return b.build()


program_shapes = st.tuples(
    st.lists(_op, min_size=1, max_size=12),
    st.integers(1, (BUF - MAX_OFF - 8) // STRIDE),
    st.integers(0, 2**31),
)


def _engines_agree_on(program, make_config):
    cpu = make_config()
    mem = _mem()
    s_stats, s_machine = simulate_program(
        program, cpu, mem, benchmark="diff", engine="scalar", lint=False
    )
    v_stats, v_machine = simulate_program(
        program, cpu, mem, benchmark="diff", engine="vector", lint=False
    )
    assert v_stats.to_dict() == s_stats.to_dict()
    assert bytes(v_machine.memory) == bytes(s_machine.memory)
    # second run: memoized replay, fresh memory/model stack
    r_stats, _m = simulate_program(
        program, cpu, mem, benchmark="diff", machine=v_machine, lint=False
    )
    assert r_stats.to_dict() == s_stats.to_dict()


class TestRandomProgramEquivalence:
    @given(program_shapes, st.sampled_from(CONFIGS))
    @settings(max_examples=30, deadline=None)
    def test_random_programs(self, shape, make_config):
        """Random branch/ALU/VIS/memory mixes: engines bit-identical
        (fresh vector run and memoized replay)."""
        _engines_agree_on(build_random_program(*shape), make_config)

    @given(misaligned_shapes, st.sampled_from(CONFIGS))
    @settings(max_examples=20, deadline=None)
    def test_misaligned_vis_access(self, shape, make_config):
        """Misaligned 8-byte VIS loads/stores exercise the engines'
        byte-level memory paths; still bit-identical."""
        _engines_agree_on(build_misaligned_program(*shape), make_config)


# -- hypothesis: chunk-boundary checkpoints ---------------------------------

#: small chunks so even tiny random programs cross several boundaries
CHUNK = 16

long_shapes = st.tuples(
    st.lists(_op, min_size=2, max_size=12),
    st.integers(8, (BUF - MAX_OFF - 8) // STRIDE),
    st.integers(0, 2**31),
)


def _fresh_stack(program, cpu, engine):
    machine = make_machine(program, engine)
    machine.reset()
    info = StaticProgramInfo(program)
    memory = MemorySystem(_mem())
    model = make_model(info, cpu, memory)
    model.begin("diffckpt")
    return machine, model, memory


def _run_with_snapshot(program, cpu, engine, snap_at=None):
    """Run to completion under ``engine``; optionally serialize the
    whole stack at in-loop chunk boundary ``snap_at`` (1-based)."""
    machine, model, memory = _fresh_stack(program, cpu, engine)
    state_json = None
    boundary = 0
    for chunk in machine.run(chunk_size=CHUNK):
        model.feed_chunk(chunk)
        if machine.run_pc < 0:
            break
        boundary += 1
        if boundary == snap_at:
            state_json = json.dumps(
                build_state(machine, model, memory, None)
            )
    stats = model.finish()
    stats.check_consistency()
    return stats, machine, boundary, state_json


def _resume_under(program, cpu, engine, state_json):
    machine, model, memory = _fresh_stack(program, cpu, engine)
    restore_state(json.loads(state_json), machine, model, memory, None)
    for chunk in machine.run(chunk_size=CHUNK, resume=True):
        model.feed_chunk(chunk)
        if machine.run_pc < 0:
            break
    stats = model.finish()
    stats.check_consistency()
    return stats, machine


class TestCheckpointEquivalence:
    @given(long_shapes, st.sampled_from(CONFIGS), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_vector_snapshot_resumes_identically(
        self, shape, make_config, snap_seed
    ):
        """Snapshot a vector-engine run at a random chunk boundary;
        resuming under either engine reproduces the uninterrupted
        scalar run bit-for-bit (snapshots are engine-independent)."""
        program = build_random_program(*shape)
        cpu = make_config()
        straight, straight_machine, _sb, _ = _run_with_snapshot(
            program, cpu, "scalar"
        )
        # chunk boundaries are engine-specific (the vector engine
        # appends whole blocks before the size check), so count them
        # on a vector dry run before picking where to snapshot
        _dry, _dm, boundaries, _ = _run_with_snapshot(
            program, cpu, "vector"
        )
        assume(boundaries > 0)
        snap_at = 1 + snap_seed % boundaries
        _again, _m, _b, state_json = _run_with_snapshot(
            program, cpu, "vector", snap_at
        )
        assert state_json is not None
        for resume_engine in ("scalar", "vector"):
            resumed, resumed_machine = _resume_under(
                program, cpu, resume_engine, state_json
            )
            assert resumed.to_dict() == straight.to_dict(), (
                f"resume under {resume_engine} diverged"
            )
            assert bytes(resumed_machine.memory) == bytes(
                straight_machine.memory
            )

    @given(long_shapes, st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_scalar_snapshot_resumes_under_vector(self, shape, snap_seed):
        """The mirror direction: a scalar-engine snapshot restored into
        a vector-engine stack continues bit-identically."""
        program = build_random_program(*shape)
        cpu = CONFIGS[1]()  # ooo_4way
        straight, _m, boundaries, _ = _run_with_snapshot(
            program, cpu, "scalar"
        )
        assume(boundaries > 0)
        snap_at = 1 + snap_seed % boundaries
        _again, _m2, _b, state_json = _run_with_snapshot(
            program, cpu, "scalar", snap_at
        )
        assert state_json is not None
        resumed, _machine = _resume_under(
            program, cpu, "vector", state_json
        )
        assert resumed.to_dict() == straight.to_dict()


class TestEngineSelection:
    """The selection plumbing itself."""

    def test_registry_and_default(self):
        assert set(ENGINES) == {"scalar", "vector"}
        assert resolve_engine("scalar") == "scalar"
        assert resolve_engine("vector") == "vector"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "scalar")
        assert resolve_engine() == "scalar"
        assert isinstance(make_machine(_tiny_program()), Machine)
        monkeypatch.setenv("REPRO_ENGINE", "vector")
        assert isinstance(make_machine(_tiny_program()), VectorMachine)

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("simd")

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vector")
        assert resolve_engine("scalar") == "scalar"


def _tiny_program():
    b = ProgramBuilder("tiny")
    r, = b.iregs(1)
    b.li(r, 1)
    return b.build()
