"""Assembler / ProgramBuilder tests."""

import pytest

from repro.asm import DATA_BASE, ProgramBuilder, R_AT, R_ZERO, RegisterPressureError
from repro.isa import AT, ZERO
from repro.sim import Machine


def test_buffer_layout_alignment_and_skew():
    b = ProgramBuilder()
    one = b.buffer("one", 100, align=64)
    two = b.buffer("two", 8, align=64, skew=48)
    program = b.build()
    assert one.address >= DATA_BASE
    assert one.address % 64 == 0
    assert two.address % 64 == 48
    assert two.address >= one.address + one.size
    assert program.memory_size % 0x1000 == 0


def test_duplicate_buffer_rejected():
    b = ProgramBuilder()
    b.buffer("x", 8)
    with pytest.raises(ValueError, match="duplicate"):
        b.buffer("x", 8)


def test_oversized_initializer_rejected():
    b = ProgramBuilder()
    with pytest.raises(ValueError, match="initializer"):
        b.buffer("x", 4, data=b"12345")


def test_register_pools_exhaust_and_release():
    b = ProgramBuilder()
    regs = [b.ireg() for _ in range(28)]
    with pytest.raises(RegisterPressureError):
        b.ireg()
    b.release(regs[0])
    assert b.ireg() == regs[0]
    assert len(b.fregs(32)) == 32
    with pytest.raises(RegisterPressureError):
        b.freg()


def test_reserved_registers_cannot_be_released():
    b = ProgramBuilder()
    with pytest.raises(ValueError):
        b.release(R_ZERO)
    with pytest.raises(ValueError):
        b.release(R_AT)


def test_r0_is_not_writable():
    b = ProgramBuilder()
    r = b.ireg()
    with pytest.raises(ValueError, match="read-only"):
        b.add(R_ZERO, r, 1)


def test_immediate_vs_register_operands():
    b = ProgramBuilder()
    rd, ra = b.iregs(2)
    b.add(rd, ra, 5)          # immediate form
    b.add(rd, ra, rd)         # register form
    with pytest.raises(TypeError):
        b.add(5, ra, rd)      # plain int is not a destination


def test_branch_immediate_materializes_assembler_temp():
    b = ProgramBuilder()
    r = b.ireg()
    label = b.label()
    b.li(r, 3)
    b.blt(r, 7, label)        # 7 != 0 -> li AT, 7 inserted
    b.bind(label)
    program = b.build()
    ops = [i.op for i in program.instructions]
    assert ops == ["li", "li", "blt", "halt"]
    assert program.instructions[1].dst == AT


def test_branch_against_zero_uses_r0():
    b = ProgramBuilder()
    r = b.ireg()
    label = b.label()
    b.li(r, 3)
    b.beq(r, 0, label)
    b.bind(label)
    program = b.build()
    assert program.instructions[1].srcs[1] == ZERO


def test_undefined_label_raises_at_build():
    b = ProgramBuilder()
    r = b.ireg()
    b.li(r, 0)
    b.beq(r, 0, "nowhere_7")
    with pytest.raises(ValueError, match="undefined label"):
        b.build()


def test_double_bind_rejected():
    b = ProgramBuilder()
    label = b.here()
    with pytest.raises(ValueError, match="bound twice"):
        b.bind(label)


def test_static_hint_backward_taken_forward_not():
    b = ProgramBuilder()
    r = b.ireg()
    top = b.here()
    fwd = b.label()
    b.beq(r, 0, fwd)          # forward -> hint not-taken
    b.bne(r, 0, top)          # backward -> hint taken
    b.bind(fwd)
    program = b.build()
    assert program.instructions[0].hint_taken is False
    assert program.instructions[1].hint_taken is True


def test_build_twice_rejected():
    b = ProgramBuilder()
    b.nop()
    b.build()
    with pytest.raises(RuntimeError):
        b.build()
    with pytest.raises(RuntimeError):
        b.nop()


def test_loop_counts_iterations():
    b = ProgramBuilder()
    out = b.buffer("out", 8)
    total = b.ireg()
    b.li(total, 0)
    with b.loop(0, 10, step=2):
        b.add(total, total, 1)
    with b.scratch(iregs=1) as p:
        b.la(p, out)
        b.stx(total, p)
    machine = Machine(b.build())
    machine.run_functional()
    assert int.from_bytes(machine.read_buffer("out"), "little") == 5


def test_scratch_scope_returns_registers():
    b = ProgramBuilder()
    before = len(b._free_iregs)
    with b.scratch(iregs=3):
        assert len(b._free_iregs) == before - 3
    assert len(b._free_iregs) == before


def test_disassembly_mentions_labels_and_buffers():
    b = ProgramBuilder("demo")
    b.buffer("data", 16)
    b.marker("phase one")
    r = b.ireg()
    b.la(r, "data")
    b.comment("load base")
    b.ldb(r, r)
    text = b.build().disassemble()
    assert "buffer data" in text
    assert "phase one" in text
    assert "load base" in text
