"""Integration: every benchmark x variant validates bit-exactly, and
the VIS variants genuinely shrink the dynamic instruction count."""

import pytest

from repro.sim import Machine
from repro.workloads import TINY_SCALE, Variant
from repro.workloads.suite import ALL_WORKLOADS, BY_NAME, get, names

ALL_NAMES = list(names())


def test_registry_covers_table_1():
    assert ALL_NAMES == [
        "addition", "blend", "conv", "dotprod", "scaling", "thresh",
        "cjpeg", "djpeg", "cjpeg-np", "djpeg-np", "mpeg-enc", "mpeg-dec",
    ]
    groups = {w.group for w in ALL_WORKLOADS}
    assert groups == {
        "image processing", "image source coding", "video source coding"
    }


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError, match="unknown benchmark"):
        get("nonesuch")


@pytest.mark.parametrize("name", ALL_NAMES)
@pytest.mark.parametrize(
    "variant", [Variant.SCALAR, Variant.VIS, Variant.VIS_PREFETCH]
)
def test_every_variant_validates(name, variant):
    built = BY_NAME[name].build(variant, TINY_SCALE)
    built.run_and_validate()


@pytest.mark.parametrize("name", ALL_NAMES)
def test_vis_reduces_instruction_count(name):
    workload = BY_NAME[name]
    scalar = Machine(workload.build(Variant.SCALAR, TINY_SCALE).program)
    vis = Machine(workload.build(Variant.VIS, TINY_SCALE).program)
    scalar_count = scalar.run_functional()
    vis_count = vis.run_functional()
    assert vis_count < scalar_count


@pytest.mark.parametrize("name", ALL_NAMES)
def test_vis_variant_actually_uses_vis(name):
    from repro.sim import StaticProgramInfo, CAT_VIS

    built = BY_NAME[name].build(Variant.VIS, TINY_SCALE)
    info = StaticProgramInfo(built.program)
    assert any(cat == CAT_VIS for cat in info.category)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_prefetch_variant_emits_prefetches(name):
    built = BY_NAME[name].build(Variant.VIS_PREFETCH, TINY_SCALE)
    assert any(i.op == "pf" for i in built.program.instructions)


def test_scalar_variant_has_no_vis(name="addition"):
    from repro.isa.opcodes import spec

    built = BY_NAME[name].build(Variant.SCALAR, TINY_SCALE)
    assert not any(
        spec(i.op).is_vis for i in built.program.instructions
    )


def test_validation_detects_corruption():
    from repro.workloads.base import ValidationError

    built = BY_NAME["addition"].build(Variant.SCALAR, TINY_SCALE)
    machine = Machine(built.program)
    machine.run_functional()
    # corrupt one output byte
    buf = built.program.buffers["dst"]
    machine.memory[buf.address] ^= 0xFF
    with pytest.raises(ValidationError):
        built.validate(machine)


def test_kernel_ablation_options():
    """Footnote-3 knobs exist: naive builds validate too."""
    for name in ("addition", "conv"):
        built = BY_NAME[name].build(
            Variant.SCALAR, TINY_SCALE, skew=False, unroll=1
        )
        built.run_and_validate()
