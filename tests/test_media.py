"""Tests for the numpy reference media substrate."""

import numpy as np
import pytest
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.media import bitstream, colorspace, dct, huffman, images, kernels, zigzag
from repro.media.ppm import read_pnm, write_pnm


class TestImages:
    def test_synthetic_image_deterministic(self):
        a = images.synthetic_image(32, 16, 3, seed=5)
        b = images.synthetic_image(32, 16, 3, seed=5)
        assert np.array_equal(a, b)
        assert a.shape == (16, 32, 3)
        assert a.dtype == np.uint8

    def test_different_seeds_differ(self):
        a = images.synthetic_image(32, 16, seed=1)
        b = images.synthetic_image(32, 16, seed=2)
        assert not np.array_equal(a, b)

    def test_video_has_motion(self):
        frames = images.synthetic_video(48, 32, 4, seed=9)
        assert len(frames) == 4
        assert any(
            not np.array_equal(frames[i], frames[i + 1]) for i in range(3)
        )

    def test_video_yuv_chroma_half_resolution(self):
        frames = images.synthetic_video_yuv(48, 32, 2)
        y, u, v = frames[0]
        assert y.shape == (32, 48)
        assert u.shape == v.shape == (16, 24)


class TestKernelReferences:
    def test_addition_rounds(self):
        a = np.array([0, 255, 10], dtype=np.uint8)
        b = np.array([1, 255, 11], dtype=np.uint8)
        assert list(kernels.addition(a, b)) == [1, 255, 11]

    def test_thresh_window(self):
        x = np.array([0, 80, 120, 160, 161], dtype=np.uint8)
        out = kernels.thresh(x, 80, 160, 255)
        assert list(out) == [0, 255, 255, 255, 161]

    def test_scaling_saturates(self):
        x = np.array([0, 128, 255], dtype=np.uint8)
        out = kernels.scaling(x, 512, 10)  # gain 2.0 + 10
        assert list(out) == [10, 255, 255]

    def test_conv3x3_unity_kernel_is_identity_in_interior(self):
        image = images.synthetic_gray(16, 16, seed=3)
        identity = np.zeros((3, 3), dtype=np.int16)
        identity[1, 1] = 256
        out = kernels.conv3x3(image, identity)
        assert np.array_equal(out[1:-1, 1:-1], image[1:-1, 1:-1])
        assert (out[0] == 0).all()

    def test_dotprod_rejects_wrapping_lanes(self):
        big = np.full(4096, 3000, dtype=np.int16)
        with pytest.raises(ValueError, match="wrap"):
            kernels.dotprod(big, big)

    def test_blend_alpha_extremes(self):
        src1 = np.array([200], dtype=np.uint8)
        src2 = np.array([10], dtype=np.uint8)
        full = kernels.blend(src1, src2, np.array([255], dtype=np.uint8))
        none = kernels.blend(src1, src2, np.array([0], dtype=np.uint8))
        assert abs(int(full[0]) - 200) <= 1
        assert abs(int(none[0]) - 10) <= 1


class TestDct:
    def test_forward_matches_orthonormal_shape(self):
        from scipy.fft import dctn

        rng = np.random.default_rng(1)
        block = rng.integers(-128, 128, size=(8, 8)).astype(np.int64)
        ours = dct.fdct2d(block)
        reference = dctn(block.astype(float), norm="ortho")
        mask = np.abs(reference) > 64
        ratio = ours[mask] / reference[mask]
        assert abs(ratio.mean() - 4.0) < 0.1

    def test_roundtrip_error_small(self):
        rng = np.random.default_rng(2)
        blocks = rng.integers(0, 256, size=(32, 8, 8)).astype(np.int64)
        recon = dct.idct2d(dct.fdct2d(blocks - 128)) + 128
        err = np.abs(recon - blocks)
        assert err.max() <= 6

    @given(st.integers(0, 2**32))
    @settings(max_examples=25, deadline=None)
    def test_all_intermediates_fit_16_bits(self, seed):
        """The packed pipeline's soundness condition: byte-input blocks
        never overflow a 16-bit lane anywhere in the forward transform."""
        rng = np.random.default_rng(seed)
        block = rng.integers(-128, 128, size=(8, 8)).astype(np.int64)
        out = dct.fdct2d(block)
        assert out.max() <= 32767 and out.min() >= -32768
        pass1 = dct.fdct1d(np.swapaxes(block, -1, -2))
        assert np.abs(pass1).max() <= 32767

    def test_quantize_symmetric(self):
        div = np.full((8, 8), 40, dtype=np.int64)
        values = np.zeros((8, 8), dtype=np.int64)
        values[0, 0], values[0, 1] = 100, -100
        q = dct.quantize(values, div)
        assert q[0, 0] == 3 and q[0, 1] == -3

    def test_quality_scaling_monotone(self):
        low = dct.divisors_for(dct.BASE_LUMA_QUANT, 25)
        high = dct.divisors_for(dct.BASE_LUMA_QUANT, 90)
        assert (low >= high).all()


class TestZigzag:
    def test_permutation(self):
        assert sorted(zigzag.ZIGZAG) == list(range(64))
        assert zigzag.ZIGZAG[0] == 0
        assert zigzag.ZIGZAG[1] == 1   # right first
        assert zigzag.ZIGZAG[2] == 8   # then down

    def test_transposed_order_consistency(self):
        block = np.arange(64).reshape(8, 8)
        natural = block.reshape(64)[zigzag.ZIGZAG]
        transposed = block.T.reshape(64)[zigzag.ZIGZAG_T]
        assert np.array_equal(natural, transposed)

    def test_scan_unscan_roundtrip(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(-100, 100, size=(5, 8, 8))
        assert np.array_equal(
            zigzag.zigzag_unscan(zigzag.zigzag_scan(blocks)), blocks
        )


class TestBitstream:
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(1, 16)), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_writer_reader_roundtrip(self, pairs):
        writer = bitstream.BitWriter()
        for value, length in pairs:
            writer.write(value & ((1 << length) - 1), length)
        reader = bitstream.BitReader(writer.getvalue())
        for value, length in pairs:
            assert reader.read(length) == value & ((1 << length) - 1)

    def test_padding_is_ones(self):
        writer = bitstream.BitWriter()
        writer.write(0, 1)
        assert writer.getvalue() == b"\x7f"

    @given(st.integers(-2000, 2000))
    def test_extend_roundtrip(self, value):
        size = bitstream.magnitude_category(value)
        if value == 0:
            assert size == 0
        else:
            bits = bitstream.magnitude_bits(value, size)
            assert bitstream.receive_extend(bits, size) == value

    def test_bad_write_rejected(self):
        writer = bitstream.BitWriter()
        with pytest.raises(ValueError):
            writer.write(4, 2)


class TestHuffman:
    def test_tables_are_prefix_free(self):
        for table in (huffman.DC_TABLE, huffman.AC_TABLE):
            codes = sorted(
                (length, code) for code, length in table.codes.values()
            )
            as_strings = [
                format(code, f"0{length}b") for length, code in codes
            ]
            for i, a in enumerate(as_strings):
                for b in as_strings[i + 1 :]:
                    assert not b.startswith(a)

    def test_length_limit_respected(self):
        assert huffman.AC_TABLE.max_length() <= huffman.MAX_CODE_LENGTH

    @given(st.lists(st.integers(0, 11), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_encode_decode_roundtrip(self, symbols):
        writer = bitstream.BitWriter()
        for s in symbols:
            huffman.DC_TABLE.encode(writer, s)
        reader = bitstream.BitReader(writer.getvalue())
        assert [huffman.DC_TABLE.decode(reader) for _ in symbols] == symbols

    def test_frequent_symbols_get_short_codes(self):
        table = huffman.HuffmanTable.from_frequencies({1: 1000, 2: 10, 3: 1})
        assert table.codes[1][1] <= table.codes[3][1]

    def test_table_arrays_dense(self):
        codes, lengths = huffman.table_arrays(huffman.DC_TABLE, 16)
        assert len(codes) == len(lengths) == 16
        for symbol, (code, length) in huffman.DC_TABLE.codes.items():
            assert codes[symbol] == code and lengths[symbol] == length


class TestColorspace:
    def test_roundtrip_close(self):
        rgb = images.synthetic_image(32, 16, 3, seed=4)
        y, cb, cr = colorspace.rgb_to_ycbcr(rgb)
        back = colorspace.ycbcr_to_rgb(y, cb, cr)
        assert np.abs(back.astype(int) - rgb.astype(int)).max() <= 4

    def test_gray_maps_to_neutral_chroma(self):
        gray = np.full((8, 8, 3), 128, dtype=np.uint8)
        y, cb, cr = colorspace.rgb_to_ycbcr(gray)
        assert np.all(np.abs(cb.astype(int) - 128) <= 1)
        assert np.all(np.abs(cr.astype(int) - 128) <= 1)

    def test_inverse_coefficients_are_even(self):
        # required for bit-exact VIS bias folding (see module docstring)
        for coeff in (
            colorspace.R_FROM_CR,
            colorspace.G_FROM_CB,
            colorspace.G_FROM_CR,
            colorspace.B_FROM_CB,
        ):
            assert coeff % 2 == 0

    def test_decimate_upsample(self):
        plane = images.synthetic_gray(16, 8, seed=6)
        small = colorspace.decimate420(plane)
        assert small.shape == (4, 8)
        big = colorspace.upsample420(small)
        assert big.shape == plane.shape
        assert np.array_equal(big[::2, ::2], small)

    def test_decimate_requires_even_dims(self):
        with pytest.raises(ValueError):
            colorspace.decimate420(np.zeros((3, 4), dtype=np.uint8))


class TestPpm:
    def test_ppm_roundtrip(self, tmp_path):
        image = images.synthetic_image(20, 10, 3, seed=8)
        path = tmp_path / "x.ppm"
        write_pnm(path, image)
        assert np.array_equal(read_pnm(path), image)

    def test_pgm_roundtrip(self, tmp_path):
        image = images.synthetic_gray(20, 10, seed=8)
        path = tmp_path / "x.pgm"
        write_pnm(path, image)
        assert np.array_equal(read_pnm(path), image)

    def test_comments_in_header(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_bytes(b"P5\n# a comment\n2 2\n255\n\x00\x01\x02\x03")
        assert read_pnm(path).shape == (2, 2)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.ppm"
        path.write_bytes(b"P3\n1 1\n255\n0 0 0")
        with pytest.raises(ValueError):
            read_pnm(path)


class TestMetrics:
    def test_psnr_identical_is_infinite(self):
        from repro.media.metrics import psnr

        a = images.synthetic_gray(8, 8)
        assert psnr(a, a) == float("inf")

    def test_psnr_decreases_with_noise(self):
        from repro.media.metrics import psnr

        a = images.synthetic_gray(32, 32).astype(np.int64)
        small = np.clip(a + 1, 0, 255)
        big = np.clip(a + 16, 0, 255)
        assert psnr(a, small) > psnr(a, big) > 0

    def test_sad_matches_mpeg_reference(self):
        from repro.media import mpeg
        from repro.media.metrics import sad

        rng = np.random.default_rng(0)
        x = rng.integers(0, 256, (16, 16)).astype(np.uint8)
        y = rng.integers(0, 256, (16, 16)).astype(np.uint8)
        assert sad(x, y) == mpeg.sad16(x, y)

    def test_shape_mismatch_rejected(self):
        from repro.media.metrics import mse

        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))
