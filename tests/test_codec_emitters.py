"""Unit tests for the codec assembly emitters, phase by phase.

Each test builds a minimal program around one emitter and compares the
simulated result with the corresponding numpy reference — the same
bit-exactness contract the full benchmarks rely on, localized so a
regression points at the guilty phase.
"""

import numpy as np
import pytest

from repro.asm import ProgramBuilder
from repro.media.bitstream import BitWriter
from repro.media.colorspace import decimate420, rgb_to_ycbcr, upsample420, ycbcr_to_rgb
from repro.media.dct import (
    BASE_LUMA_QUANT,
    dequantize,
    divisors_for,
    fdct2d,
    idct2d,
    quantize,
)
from repro.media.images import synthetic_image
from repro.media.jpeg import encode_block
from repro.media.zigzag import ZIGZAG
from repro.media import mpeg
from repro.sim import Machine
from repro.workloads.jpeg.entropy import (
    emit_decode_block,
    emit_encode_block,
    emit_entropy_subroutines,
    emit_flush_encoder,
    make_entropy_unit,
)
from repro.workloads.jpeg.pixel import (
    FORWARD_NAMES,
    INVERSE_NAMES,
    declare_pixel_constants,
    emit_decimate_region,
    emit_rgb_to_ycbcr_scalar,
    emit_rgb_to_ycbcr_vis,
    emit_upsample_plane,
    emit_ycbcr_to_rgb_scalar,
    emit_ycbcr_to_rgb_vis,
    load_pixel_constants,
)
from repro.workloads.jpeg.tables import declare_codec_tables, load_vis_constants
from repro.workloads.jpeg.transform import (
    emit_dequant_idct_block_scalar,
    emit_dequant_idct_block_vis,
    emit_fdct_quant_block_scalar,
    emit_fdct_quant_block_vis,
)
from repro.workloads.mpeg.motion import (
    emit_copy_block,
    emit_full_search,
    emit_sad_16x16_scalar,
    emit_sad_16x16_vis,
)

DIV = divisors_for(BASE_LUMA_QUANT, 75)
RGB = synthetic_image(16, 16, 3, seed=16)
Y_PLANE, CB_PLANE, CR_PLANE = rgb_to_ycbcr(RGB)


def new_builder(use_vis):
    b = ProgramBuilder("emitter-test")
    declare_codec_tables(b, DIV, DIV, use_vis)
    declare_pixel_constants(b)
    b.buffer("scr", 128)
    b.buffer("scr2", 128)
    return b


def run(b):
    machine = Machine(b.build())
    machine.run_functional()
    return machine


class TestTransformEmitters:
    @pytest.mark.parametrize("use_vis", [False, True])
    def test_fdct_quant_block(self, use_vis):
        block = Y_PLANE[:8, :8]
        expected = quantize(fdct2d(block.astype(np.int64) - 128), DIV)
        b = new_builder(use_vis)
        b.buffer("plane", 64, data=block.tobytes())
        b.buffer("coef", 128)
        if use_vis:
            b.set_gsr(align=4, scale=7)
            consts = load_vis_constants(b, b_tables(b))
            fz = b.freg()
            b.fzero(fz)
        p_plane, p_coef = b.iregs(2)
        b.la(p_plane, "plane")
        b.la(p_coef, "coef")
        if use_vis:
            emit_fdct_quant_block_vis(
                b, p_plane, 8, p_coef, "luma_div", "scr", "scr2", consts, fz)
        else:
            emit_fdct_quant_block_scalar(
                b, p_plane, 8, p_coef, "luma_div", "scr")
        machine = run(b)
        got = machine.read_buffer_array("coef", dtype="<i2").reshape(8, 8)
        if use_vis:
            got = got.T  # the packed pipeline leaves coefficients transposed
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("use_vis", [False, True])
    def test_dequant_idct_block(self, use_vis):
        block = Y_PLANE[:8, :8]
        levels = quantize(fdct2d(block.astype(np.int64) - 128), DIV)
        expected = np.clip(idct2d(dequantize(levels, DIV)) + 128, 0, 255)
        stored = levels.T if use_vis else levels
        b = new_builder(use_vis)
        b.buffer("coef", 128, data=stored.astype("<i2").tobytes())
        b.buffer("plane", 64)
        if use_vis:
            b.set_gsr(align=4, scale=7)
            consts = load_vis_constants(b, b_tables(b))
            fz = b.freg()
            b.fzero(fz)
        p_coef, p_plane = b.iregs(2)
        b.la(p_coef, "coef")
        b.la(p_plane, "plane")
        if use_vis:
            emit_dequant_idct_block_vis(
                b, p_coef, "luma_div", p_plane, 8, "scr", "scr2", consts, fz)
        else:
            emit_dequant_idct_block_scalar(
                b, p_coef, "luma_div", p_plane, 8, "scr")
        machine = run(b)
        got = machine.read_buffer_array("plane").reshape(8, 8)
        assert np.array_equal(got, expected.astype(np.uint8))


def b_tables(b):
    """The tables were already declared by new_builder; reconstruct the
    handle (names are fixed)."""
    from repro.workloads.jpeg.tables import CodecTables, DecoderTables, VIS_CONSTANTS

    dc = DecoderTables("dc_lut_sym", "dc_lut_len", "dc_mincode",
                       "dc_maxcode", "dc_valptr", "dc_values")
    ac = DecoderTables("ac_lut_sym", "ac_lut_len", "ac_mincode",
                       "ac_maxcode", "ac_valptr", "ac_values")
    return CodecTables(
        zigzag_offsets="zz_offsets",
        luma_divisors="luma_div",
        chroma_divisors="chroma_div",
        dc=dc, ac=ac,
        vis_constants={k: f"k_{k}" for k in VIS_CONSTANTS},
    )


class TestPixelEmitters:
    @pytest.mark.parametrize("use_vis", [False, True])
    def test_forward_color_conversion(self, use_vis):
        b = new_builder(use_vis)
        b.buffer("rgb", RGB.size, data=RGB.tobytes())
        for name in ("py", "pcb", "pcr"):
            b.buffer(name, 256)
        regs = b.iregs(4)
        b.la(regs[0], "rgb")
        b.la(regs[1], "py")
        b.la(regs[2], "pcb")
        b.la(regs[3], "pcr")
        if use_vis:
            b.set_gsr(align=4, scale=7)
            state = load_pixel_constants(b, FORWARD_NAMES)
            emit_rgb_to_ycbcr_vis(b, state, *regs, 16, 16, 16)
        else:
            emit_rgb_to_ycbcr_scalar(b, *regs, 16, 16, 16)
        machine = run(b)
        assert np.array_equal(
            machine.read_buffer_array("py").reshape(16, 16), Y_PLANE)
        assert np.array_equal(
            machine.read_buffer_array("pcb").reshape(16, 16), CB_PLANE)
        assert np.array_equal(
            machine.read_buffer_array("pcr").reshape(16, 16), CR_PLANE)

    @pytest.mark.parametrize("use_vis", [False, True])
    def test_inverse_color_conversion(self, use_vis):
        expected = ycbcr_to_rgb(Y_PLANE, CB_PLANE, CR_PLANE)
        b = new_builder(use_vis)
        b.buffer("py", 256, data=Y_PLANE.tobytes())
        b.buffer("pcb", 256, data=CB_PLANE.tobytes())
        b.buffer("pcr", 256, data=CR_PLANE.tobytes())
        b.buffer("rgb", 768)
        regs = b.iregs(4)
        b.la(regs[0], "py")
        b.la(regs[1], "pcb")
        b.la(regs[2], "pcr")
        b.la(regs[3], "rgb")
        if use_vis:
            b.set_gsr(align=4, scale=7)
            state = load_pixel_constants(b, INVERSE_NAMES)
            emit_ycbcr_to_rgb_vis(b, state, *regs, 16, 16)
        else:
            emit_ycbcr_to_rgb_scalar(b, *regs, 16, 16)
        machine = run(b)
        got = machine.read_buffer_array("rgb").reshape(16, 16, 3)
        assert np.array_equal(got, expected)

    def test_decimation(self):
        expected = decimate420(CB_PLANE)
        b = new_builder(False)
        b.buffer("src", 256, data=CB_PLANE.tobytes())
        b.buffer("dst", 64)
        ps, pd = b.iregs(2)
        b.la(ps, "src")
        b.la(pd, "dst")
        emit_decimate_region(b, ps, pd, 8, 8, 16, 8)
        machine = run(b)
        assert np.array_equal(
            machine.read_buffer_array("dst").reshape(8, 8), expected)

    @pytest.mark.parametrize("use_vis", [False, True])
    def test_upsample(self, use_vis):
        small = decimate420(CB_PLANE)
        expected = upsample420(small)
        b = new_builder(use_vis)
        b.buffer("src", 64, data=small.tobytes())
        b.buffer("dst", 256)
        ps, pd = b.iregs(2)
        b.la(ps, "src")
        b.la(pd, "dst")
        fz = None
        if use_vis:
            b.set_gsr(align=4, scale=7)
            fz = b.freg()
            b.fzero(fz)
        emit_upsample_plane(b, ps, pd, 8, 8, 16, use_vis, fz=fz)
        machine = run(b)
        assert np.array_equal(
            machine.read_buffer_array("dst").reshape(16, 16), expected)


class TestEntropyEmitters:
    def test_encode_block_matches_reference(self):
        rng = np.random.default_rng(5)
        zz = np.zeros(64, np.int64)
        zz[:10] = rng.integers(-50, 50, 10)
        zz[30] = 700
        natural = np.zeros(64, "<i2")
        natural[ZIGZAG] = zz
        writer = BitWriter()
        encode_block(writer, zz, 0, 63, 0)
        expected = writer.getvalue()

        b = new_builder(False)
        b.buffer("coef", 128, data=natural.tobytes())
        b.buffer("out", 512)
        ent = make_entropy_unit(b)
        emit_entropy_subroutines(b, ent, b_tables(b), encoder=True, decoder=False)
        ent.reset_encoder(b, "out")
        pred, p_coef = b.iregs(2)
        b.li(pred, 0)
        b.la(p_coef, "coef")
        emit_encode_block(b, ent, p_coef, 0, 63, pred)
        emit_flush_encoder(b, ent)
        machine = run(b)
        assert machine.read_buffer("out")[: len(expected)] == expected

    def test_decode_block_roundtrip(self):
        rng = np.random.default_rng(6)
        zz = np.zeros(64, np.int64)
        zz[:8] = rng.integers(-30, 30, 8)
        writer = BitWriter()
        encode_block(writer, zz, 0, 63, 0)
        data = writer.getvalue()

        b = new_builder(False)
        b.buffer("in", len(data) + 8, data=data)
        b.buffer("coef", 128)
        ent = make_entropy_unit(b)
        emit_entropy_subroutines(b, ent, b_tables(b), encoder=False, decoder=True)
        pred, p_coef = b.iregs(2)
        with b.scratch(iregs=1) as t:
            b.la(t, "in")
            ent.reset_decoder(b, t)
        b.li(pred, 0)
        b.la(p_coef, "coef")
        emit_decode_block(b, ent, p_coef, 0, 63, pred)
        machine = run(b)
        got = machine.read_buffer_array("coef", dtype="<i2").astype(np.int64)
        natural = np.zeros(64, np.int64)
        natural[ZIGZAG] = zz
        assert np.array_equal(got, natural)


class TestMotionEmitters:
    @pytest.mark.parametrize("use_vis", [False, True])
    def test_sad_16x16(self, use_vis):
        rng = np.random.default_rng(7)
        cur = rng.integers(0, 256, (16, 16)).astype(np.uint8)
        ref = rng.integers(0, 256, (16, 24)).astype(np.uint8)
        expected = mpeg.sad16(cur, ref[:, 3:19])

        b = ProgramBuilder("sad")
        b.buffer("cur", 256, data=cur.tobytes())
        b.buffer("ref", 16 * 24 + 16, data=ref.tobytes())
        b.buffer("out", 8)
        b.buffer("mv_spill", 8)
        pc, pr, sad = b.iregs(3)
        b.la(pc, "cur")
        b.la(pr, "ref", offset=3)
        if use_vis:
            emit_sad_16x16_vis(b, pc, 16, pr, 24, sad, "mv_spill")
        else:
            emit_sad_16x16_scalar(b, pc, 16, pr, 24, sad)
        with b.scratch(iregs=1) as p:
            b.la(p, "out")
            b.stx(sad, p)
        machine = run(b)
        got = int.from_bytes(machine.read_buffer("out"), "little")
        assert got == expected

    @pytest.mark.parametrize("use_vis", [False, True])
    def test_full_search_matches_reference(self, use_vis):
        from repro.media.images import synthetic_video

        frames = synthetic_video(48, 32, 2, seed=12)
        cur, ref = frames[1], frames[0]
        expected = mpeg.full_search(cur, ref, 16, 16, 2)

        b = ProgramBuilder("search")
        b.buffer("cur", cur.size, data=cur.tobytes())
        b.buffer("ref", ref.size + 16, data=ref.tobytes())
        b.buffer("mv_spill", 8)
        b.buffer("out", 24)
        p_cur, p_ref, y, x = b.iregs(4)
        best_sad, best_dy, best_dx = b.iregs(3)
        b.la(p_cur, "cur", offset=16 * 48 + 16)
        b.la(p_ref, "ref")
        b.li(y, 16)
        b.li(x, 16)
        emit_full_search(b, p_cur, p_ref, y, x, 48, 32, 2,
                         best_sad, best_dy, best_dx, use_vis)
        with b.scratch(iregs=1) as p:
            b.la(p, "out")
            b.stx(best_dy, p, 0)
            b.stx(best_dx, p, 8)
            b.stx(best_sad, p, 16)
        machine = run(b)
        got = machine.read_buffer_array("out", dtype="<i8")
        assert (got[0], got[1], got[2]) == expected

    def test_copy_block_unaligned(self):
        rng = np.random.default_rng(8)
        src = rng.integers(0, 256, 24 * 16 + 16).astype(np.uint8)
        b = ProgramBuilder("copy")
        b.buffer("src", src.size, data=src.tobytes())
        b.buffer("dst", 16 * 16 + 16)
        ps, pd = b.iregs(2)
        b.la(ps, "src", offset=5)   # deliberately misaligned
        b.la(pd, "dst")
        emit_copy_block(b, ps, 24, pd, 16, 16, 16, use_vis=True)
        machine = run(b)
        got = machine.read_buffer_array("dst")[:256].reshape(16, 16)
        expected = src[5 : 5 + 24 * 16].reshape(-1)[: 24 * 16].reshape(16, 24)[:, :16]
        expected = np.stack([src[5 + r * 24 : 5 + r * 24 + 16] for r in range(16)])
        assert np.array_equal(got, expected)
